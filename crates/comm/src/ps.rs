//! A (sharded) parameter server over threads.
//!
//! Downpour and EAMSGD aggregate through a central server: learners *push*
//! deltas asynchronously and *pull* fresh parameters. The paper's testbed
//! runs the sharded server on host CPUs while learners live on GPUs; here
//! each shard is a thread owning a contiguous slice of the parameter
//! vector.
//!
//! The server exposes three operations:
//!
//! * `add(delta)` — `x ← x + delta` (fire-and-forget). Downpour pushes
//!   `−γ·g`; EAMSGD pushes the elastic difference `α(xᵢ − x̃)`.
//! * `pull()` — round-trip fetch of the current parameters. Shards answer
//!   independently, so under concurrent `add`s the assembled vector may
//!   mix old and new shard states — the *inconsistency of sharded servers*
//!   the paper calls out in §I/§III.
//! * [`PsClient::pull_snapshot`] — epoch-versioned fetch that retries until
//!   every shard reports the **same applied-update set**, yielding a
//!   transaction-consistent cut across shards (no torn cross-shard reads).
//!
//! For fault tolerance, [`PsClient::pull_timeout`] bounds the round-trip
//! with a deadline and bounded retry/backoff, returning a typed
//! [`PsError`] instead of hanging or panicking when a shard dies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, RecvTimeoutError, Sender};

/// Typed parameter-server failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PsError {
    /// A shard thread is gone (channel disconnected).
    ShardDown {
        /// Index of the dead shard.
        shard: usize,
    },
    /// A shard did not reply within the deadline.
    Timeout {
        /// Index of the slow shard.
        shard: usize,
    },
    /// [`PsClient::pull_snapshot`] could not observe a consistent cut
    /// within its retry budget (sustained concurrent pushes).
    SnapshotContention {
        /// Attempts made before giving up.
        attempts: usize,
    },
}

impl std::fmt::Display for PsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PsError::ShardDown { shard } => write!(f, "parameter-server shard {shard} hung up"),
            PsError::Timeout { shard } => write!(f, "parameter-server shard {shard} timed out"),
            PsError::SnapshotContention { attempts } => {
                write!(f, "no consistent snapshot after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for PsError {}

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct PsConfig {
    /// Number of shard threads (the paper uses a sharded server for speed).
    pub shards: usize,
}

impl Default for PsConfig {
    fn default() -> Self {
        PsConfig { shards: 1 }
    }
}

/// Order-independent digest of the set of update epochs a shard has
/// applied. Two shards with equal stamps have applied the same adds (the
/// epoch values are mixed through splitmix64, so distinct sets colliding in
/// all three fields at once is vanishingly unlikely), which makes the
/// concatenation of their segments a transaction-consistent cut.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStamp {
    /// Updates applied.
    pub count: u64,
    /// XOR of mixed epoch ids.
    pub xor: u64,
    /// Wrapping sum of mixed epoch ids.
    pub sum: u64,
}

impl ShardStamp {
    fn apply(&mut self, epoch: u64) {
        let h = mix64(epoch);
        self.count += 1;
        self.xor ^= h;
        self.sum = self.sum.wrapping_add(h);
    }
}

/// splitmix64 finalizer, used to spread epoch ids across the stamp fields.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

enum PsMsg {
    /// `x[segment] += delta`, stamped with the update's global epoch id.
    Add(u64, Vec<f32>),
    /// Reply with a copy of the segment.
    Pull(Sender<Vec<f32>>),
    /// Reply with the shard's stamp plus a copy of the segment.
    PullVersioned(Sender<(ShardStamp, Vec<f32>)>),
    /// Stop the shard thread.
    Shutdown,
}

/// Handle owning the shard threads; create clients with [`PsServer::client`].
pub struct PsServer {
    shard_txs: Vec<Sender<PsMsg>>,
    bounds: Vec<(usize, usize)>,
    handles: Vec<JoinHandle<Vec<f32>>>,
    traffic: Arc<PsTraffic>,
    epoch: Arc<AtomicU64>,
}

/// Elements moved through the server (both directions).
#[derive(Default)]
pub struct PsTraffic {
    /// Elements pushed by learners.
    pub pushed: AtomicU64,
    /// Elements pulled by learners.
    pub pulled: AtomicU64,
}

impl PsServer {
    /// Spawn shard threads seeded with `initial` parameters.
    ///
    /// # Panics
    /// Panics if `cfg.shards == 0` or exceeds the parameter count.
    pub fn spawn(initial: Vec<f32>, cfg: PsConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(
            cfg.shards <= initial.len().max(1),
            "more shards than parameters"
        );
        let m = initial.len();
        let base = m / cfg.shards;
        let extra = m % cfg.shards;
        let mut bounds = Vec::with_capacity(cfg.shards);
        let mut start = 0usize;
        for k in 0..cfg.shards {
            let len = base + usize::from(k < extra);
            bounds.push((start, start + len));
            start += len;
        }
        let mut shard_txs = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        for &(lo, hi) in &bounds {
            let mut segment = initial[lo..hi].to_vec();
            let (tx, rx) = unbounded::<PsMsg>();
            shard_txs.push(tx);
            handles.push(std::thread::spawn(move || {
                let mut stamp = ShardStamp::default();
                while let Ok(msg) = rx.recv() {
                    match msg {
                        PsMsg::Add(epoch, delta) => {
                            stamp.apply(epoch);
                            for (x, d) in segment.iter_mut().zip(&delta) {
                                *x += d;
                            }
                        }
                        PsMsg::Pull(reply) => {
                            // A dead client is fine; drop the reply.
                            let _ = reply.send(segment.clone());
                        }
                        PsMsg::PullVersioned(reply) => {
                            let _ = reply.send((stamp, segment.clone()));
                        }
                        PsMsg::Shutdown => break,
                    }
                }
                segment
            }));
        }
        PsServer {
            shard_txs,
            bounds,
            handles,
            traffic: Arc::new(PsTraffic::default()),
            epoch: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A client endpoint for one learner.
    pub fn client(&self) -> PsClient {
        PsClient {
            shard_txs: self.shard_txs.clone(),
            bounds: self.bounds.clone(),
            traffic: Arc::clone(&self.traffic),
            epoch: Arc::clone(&self.epoch),
        }
    }

    /// Shared traffic counters.
    pub fn traffic(&self) -> Arc<PsTraffic> {
        Arc::clone(&self.traffic)
    }

    /// Stop all shards and return the final parameter vector.
    pub fn shutdown(mut self) -> Vec<f32> {
        for tx in &self.shard_txs {
            let _ = tx.send(PsMsg::Shutdown);
        }
        let mut out = Vec::new();
        for h in self.handles.drain(..) {
            out.extend(h.join().expect("shard thread"));
        }
        out
    }
}

/// A learner's endpoint to the server. Cheap to clone per thread.
#[derive(Clone)]
pub struct PsClient {
    shard_txs: Vec<Sender<PsMsg>>,
    bounds: Vec<(usize, usize)>,
    traffic: Arc<PsTraffic>,
    /// Global update-epoch ticket counter, shared by every client so each
    /// logical `add` gets a unique id across the whole server.
    epoch: Arc<AtomicU64>,
}

impl PsClient {
    /// Asynchronous `x ← x + delta` across all shards.
    ///
    /// # Panics
    /// Panics if `delta` length differs from the parameter count, or a
    /// shard thread is gone (use [`PsClient::try_add`] for the fallible
    /// form).
    pub fn add(&self, delta: &[f32]) {
        self.try_add(delta).expect("shard hung up");
    }

    /// Fallible [`PsClient::add`]: [`PsError::ShardDown`] instead of a
    /// panic when a shard thread died.
    ///
    /// # Panics
    /// Panics if `delta` length differs from the parameter count.
    pub fn try_add(&self, delta: &[f32]) -> Result<(), PsError> {
        let m = self.bounds.last().map_or(0, |&(_, hi)| hi);
        assert_eq!(delta.len(), m, "delta length mismatch");
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        self.traffic
            .pushed
            .fetch_add(delta.len() as u64, Ordering::Relaxed);
        for (shard, (tx, &(lo, hi))) in self.shard_txs.iter().zip(&self.bounds).enumerate() {
            tx.send(PsMsg::Add(epoch, delta[lo..hi].to_vec()))
                .map_err(|_| PsError::ShardDown { shard })?;
        }
        Ok(())
    }

    /// Downpour-style gradient push: `x ← x − γ·g` applied server-side.
    pub fn push_gradient(&self, gamma: f32, grad: &[f32]) {
        let delta: Vec<f32> = grad.iter().map(|g| -gamma * g).collect();
        self.add(&delta);
    }

    /// Fallible [`PsClient::push_gradient`].
    pub fn try_push_gradient(&self, gamma: f32, grad: &[f32]) -> Result<(), PsError> {
        let delta: Vec<f32> = grad.iter().map(|g| -gamma * g).collect();
        self.try_add(&delta)
    }

    /// Round-trip fetch of the full parameter vector.
    ///
    /// Shards answer independently: under concurrent `add`s the assembled
    /// vector may mix old and new shard states (sharded-server
    /// inconsistency); [`PsClient::pull_snapshot`] avoids that.
    pub fn pull(&self) -> Vec<f32> {
        let m = self.bounds.last().map_or(0, |&(_, hi)| hi);
        let mut out = vec![0.0f32; m];
        let mut pending = Vec::with_capacity(self.shard_txs.len());
        for (tx, &(lo, hi)) in self.shard_txs.iter().zip(&self.bounds) {
            let (rtx, rrx) = bounded(1);
            tx.send(PsMsg::Pull(rtx)).expect("shard hung up");
            pending.push((rrx, lo, hi));
        }
        for (rrx, lo, hi) in pending {
            let seg = rrx.recv().expect("shard reply");
            out[lo..hi].copy_from_slice(&seg);
        }
        self.traffic.pulled.fetch_add(m as u64, Ordering::Relaxed);
        out
    }

    /// [`PsClient::pull`] with a per-shard reply deadline and bounded
    /// retry/backoff — the Downpour fault-tolerance path. Each attempt
    /// round-trips every shard with `timeout`; on a timeout the whole pull
    /// is retried after a backoff that doubles per attempt (`backoff`,
    /// `2·backoff`, …), up to `retries` retries. A dead shard fails fast
    /// with [`PsError::ShardDown`] (retrying cannot resurrect a thread).
    ///
    /// The returned values are exactly what [`PsClient::pull`] would have
    /// returned at the same instant — the deadline changes *when* a failure
    /// surfaces, never *what* a successful pull carries.
    pub fn pull_timeout(
        &self,
        timeout: Duration,
        retries: usize,
        backoff: Duration,
    ) -> Result<Vec<f32>, PsError> {
        let mut wait = backoff;
        let mut last = PsError::Timeout { shard: 0 };
        for attempt in 0..=retries {
            if attempt > 0 && !wait.is_zero() {
                std::thread::sleep(wait);
                wait *= 2;
            }
            match self.pull_once(timeout) {
                Ok(out) => return Ok(out),
                Err(e @ PsError::ShardDown { .. }) => return Err(e),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// One deadline-bounded pull attempt.
    fn pull_once(&self, timeout: Duration) -> Result<Vec<f32>, PsError> {
        let m = self.bounds.last().map_or(0, |&(_, hi)| hi);
        let mut out = vec![0.0f32; m];
        let mut pending = Vec::with_capacity(self.shard_txs.len());
        for (shard, (tx, &(lo, hi))) in self.shard_txs.iter().zip(&self.bounds).enumerate() {
            let (rtx, rrx) = bounded(1);
            tx.send(PsMsg::Pull(rtx))
                .map_err(|_| PsError::ShardDown { shard })?;
            pending.push((shard, rrx, lo, hi));
        }
        for (shard, rrx, lo, hi) in pending {
            let seg = rrx.recv_timeout(timeout).map_err(|e| match e {
                RecvTimeoutError::Timeout => PsError::Timeout { shard },
                RecvTimeoutError::Disconnected => PsError::ShardDown { shard },
            })?;
            out[lo..hi].copy_from_slice(&seg);
        }
        self.traffic.pulled.fetch_add(m as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// Transaction-consistent fetch across shards: every shard replies with
    /// an order-independent [`ShardStamp`] of the updates it has applied,
    /// and the pull retries (up to `max_retries` extra rounds) until all
    /// stamps agree. Equal stamps mean every shard has applied exactly the
    /// same set of logical `add`s, so the concatenated segments form one
    /// consistent cut — the fix for the cross-shard torn snapshot that
    /// plain [`PsClient::pull`] permits.
    pub fn pull_snapshot(&self, max_retries: usize) -> Result<Vec<f32>, PsError> {
        let m = self.bounds.last().map_or(0, |&(_, hi)| hi);
        let attempts = max_retries + 1;
        for attempt in 0..attempts {
            // Brief, growing pause between attempts lets in-flight adds
            // drain to every shard.
            if attempt > 0 {
                if attempt < 4 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50 * attempt as u64));
                }
            }
            let mut out = vec![0.0f32; m];
            let mut pending = Vec::with_capacity(self.shard_txs.len());
            for (shard, (tx, &(lo, hi))) in self.shard_txs.iter().zip(&self.bounds).enumerate() {
                let (rtx, rrx) = bounded(1);
                tx.send(PsMsg::PullVersioned(rtx))
                    .map_err(|_| PsError::ShardDown { shard })?;
                pending.push((shard, rrx, lo, hi));
            }
            let mut stamps = Vec::with_capacity(pending.len());
            for (shard, rrx, lo, hi) in pending {
                let (stamp, seg) = rrx.recv().map_err(|_| PsError::ShardDown { shard })?;
                stamps.push(stamp);
                out[lo..hi].copy_from_slice(&seg);
            }
            if stamps.windows(2).all(|w| w[0] == w[1]) {
                self.traffic.pulled.fetch_add(m as u64, Ordering::Relaxed);
                return Ok(out);
            }
        }
        Err(PsError::SnapshotContention { attempts })
    }

    /// Parameter count served.
    pub fn param_len(&self) -> usize {
        self.bounds.last().map_or(0, |&(_, hi)| hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn push_pull_single_shard() {
        let ps = PsServer::spawn(vec![1.0, 2.0, 3.0], PsConfig { shards: 1 });
        let c = ps.client();
        c.push_gradient(0.5, &[2.0, 0.0, -2.0]);
        let x = c.pull();
        assert_eq!(x, vec![0.0, 2.0, 4.0]);
        assert_eq!(ps.shutdown(), vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn sharded_equals_unsharded_for_serial_ops() {
        let init: Vec<f32> = (0..10).map(|x| x as f32).collect();
        let delta: Vec<f32> = (0..10).map(|x| (x as f32) * 0.1).collect();
        let a = {
            let ps = PsServer::spawn(init.clone(), PsConfig { shards: 1 });
            let c = ps.client();
            c.add(&delta);
            let out = c.pull();
            ps.shutdown();
            out
        };
        let b = {
            let ps = PsServer::spawn(init, PsConfig { shards: 3 });
            let c = ps.client();
            c.add(&delta);
            let out = c.pull();
            ps.shutdown();
            out
        };
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_pushes_all_apply() {
        // Addition commutes, so any interleaving yields the same sum.
        let m = 100usize;
        let ps = PsServer::spawn(vec![0.0; m], PsConfig { shards: 4 });
        let p = 8;
        thread::scope(|s| {
            for _ in 0..p {
                let c = ps.client();
                s.spawn(move || {
                    for _ in 0..10 {
                        c.add(&vec![1.0; m]);
                    }
                });
            }
        });
        let c = ps.client();
        let x = c.pull();
        assert!(x.iter().all(|&v| v == (p * 10) as f32));
        ps.shutdown();
    }

    #[test]
    fn pull_while_pushing_is_live() {
        let m = 32usize;
        let ps = PsServer::spawn(vec![0.0; m], PsConfig { shards: 2 });
        let pusher = ps.client();
        let puller = ps.client();
        thread::scope(|s| {
            s.spawn(move || {
                for _ in 0..100 {
                    pusher.add(&vec![0.25; m]);
                }
            });
            s.spawn(move || {
                for _ in 0..20 {
                    let x = puller.pull();
                    // Values always multiples of 0.25 within [0, 25].
                    for v in x {
                        assert!((0.0..=25.0).contains(&v));
                    }
                }
            });
        });
        ps.shutdown();
    }

    #[test]
    fn traffic_counters() {
        let ps = PsServer::spawn(vec![0.0; 10], PsConfig { shards: 2 });
        let t = ps.traffic();
        let c = ps.client();
        c.add(&[1.0; 10]);
        let _ = c.pull();
        assert_eq!(t.pushed.load(Ordering::Relaxed), 10);
        assert_eq!(t.pulled.load(Ordering::Relaxed), 10);
        ps.shutdown();
    }

    #[test]
    fn empty_parameter_vector_is_ok() {
        let ps = PsServer::spawn(Vec::new(), PsConfig { shards: 1 });
        let c = ps.client();
        assert_eq!(c.pull(), Vec::<f32>::new());
        assert_eq!(c.param_len(), 0);
        ps.shutdown();
    }

    #[test]
    #[should_panic(expected = "delta length mismatch")]
    fn bad_delta_length_panics() {
        let ps = PsServer::spawn(vec![0.0; 4], PsConfig::default());
        let c = ps.client();
        c.add(&[1.0]);
    }

    #[test]
    fn snapshot_is_uniform_under_concurrent_pushes() {
        // Every add is a constant full-vector increment, so any
        // *consistent* cut is a uniform vector; a torn cut mixes shard
        // states and is non-uniform. pull_snapshot must only return
        // uniform vectors.
        let m = 64usize;
        let ps = PsServer::spawn(vec![0.0; m], PsConfig { shards: 4 });
        let pusher = ps.client();
        let snap = ps.client();
        thread::scope(|s| {
            s.spawn(move || {
                for _ in 0..200 {
                    pusher.add(&vec![1.0; m]);
                }
            });
            s.spawn(move || {
                for _ in 0..50 {
                    let x = snap.pull_snapshot(10_000).expect("snapshot");
                    let first = x[0];
                    assert!(
                        x.iter().all(|&v| v == first),
                        "torn snapshot: {:?}",
                        &x[..8.min(x.len())]
                    );
                    assert!((0.0..=200.0).contains(&first));
                }
            });
        });
        ps.shutdown();
    }

    #[test]
    fn snapshot_matches_pull_when_quiescent() {
        let ps = PsServer::spawn(vec![1.0; 9], PsConfig { shards: 3 });
        let c = ps.client();
        c.add(&[0.5; 9]);
        assert_eq!(c.pull_snapshot(4).expect("snapshot"), c.pull());
        ps.shutdown();
    }

    #[test]
    fn pull_timeout_succeeds_on_live_server() {
        let ps = PsServer::spawn(vec![2.0; 6], PsConfig { shards: 2 });
        let c = ps.client();
        let x = c
            .pull_timeout(Duration::from_millis(500), 2, Duration::from_millis(1))
            .expect("pull");
        assert_eq!(x, vec![2.0; 6]);
        ps.shutdown();
    }

    #[test]
    fn dead_shard_is_typed_error() {
        let ps = PsServer::spawn(vec![0.0; 4], PsConfig { shards: 2 });
        let c = ps.client();
        let _final = ps.shutdown(); // all shards exit
        assert!(matches!(
            c.try_add(&[1.0; 4]),
            Err(PsError::ShardDown { .. })
        ));
        assert!(matches!(
            c.pull_timeout(Duration::from_millis(50), 1, Duration::ZERO),
            Err(PsError::ShardDown { .. })
        ));
        assert!(matches!(c.pull_snapshot(1), Err(PsError::ShardDown { .. })));
    }
}

// virtual-path: crates/tensor/src/workspace.rs
// GOOD: allow-listed file, and every block carries a `// SAFETY:` comment.

pub fn take_uninit(len: usize) -> Vec<f32> {
    let mut v = Vec::with_capacity(len);
    // SAFETY: the caller overwrites all `len` elements before reading; the
    // capacity was just reserved above.
    unsafe { v.set_len(len) };
    v
}

//! ASCII tables/plots and CSV output for the reproduction harness.

use std::fs;
use std::io;
use std::path::Path;

/// Render a fixed-width ASCII table.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Render line series as an ASCII plot (one glyph per series).
///
/// Good enough to eyeball the accuracy-vs-epoch curves the paper plots;
/// the CSV files carry the exact numbers.
pub fn ascii_plot(
    title: &str,
    series: &[(&str, Vec<(f64, f64)>)],
    width: usize,
    height: usize,
) -> String {
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let mut out = format!("{title}\n");
    let pts: Vec<&(f64, f64)> = series.iter().flat_map(|(_, s)| s.iter()).collect();
    if pts.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &&(x, y) in &pts {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if (xmax - xmin).abs() < 1e-12 {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < 1e-12 {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let g = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in s {
            // lint:allow(float-cast): plot rasterization — normalized
            // coordinates in [0, w-1], rounded and clamped to the grid.
            let cx = (((x - xmin) / (xmax - xmin)) * (width - 1) as f64).round() as usize;
            // lint:allow(float-cast): same rasterization as `cx`.
            let cy = (((y - ymin) / (ymax - ymin)) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx.min(width - 1)] = g;
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{ymax:8.2} |")
        } else if i == height - 1 {
            format!("{ymin:8.2} |")
        } else {
            "         |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("          {}\n", "-".repeat(width)));
    out.push_str(&format!(
        "          {xmin:<10.1}{:>w$.1}\n",
        xmax,
        w = width.saturating_sub(10)
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} {name}\n", GLYPHS[si % GLYPHS.len()]));
    }
    out
}

/// Write `content` to `path`, creating parent directories.
pub fn write_file(path: &Path, content: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, content)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = ascii_table(
            &["p", "time (s)"],
            &[
                vec!["1".into(), "10.5".into()],
                vec!["16".into(), "1.25".into()],
            ],
        );
        assert!(t.contains("| p  | time (s) |"));
        assert!(t.contains("| 16 | 1.25     |"));
        assert_eq!(t.lines().filter(|l| l.starts_with('+')).count(), 3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        ascii_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn plot_contains_series_and_legend() {
        let s1 = vec![(0.0, 0.0), (1.0, 1.0)];
        let s2 = vec![(0.0, 1.0), (1.0, 0.0)];
        let p = ascii_plot("demo", &[("up", s1), ("down", s2)], 20, 5);
        assert!(p.contains('*') && p.contains('o'));
        assert!(p.contains("up") && p.contains("down"));
        assert!(p.starts_with("demo\n"));
    }

    #[test]
    fn plot_handles_empty_and_constant() {
        assert!(ascii_plot("t", &[("e", vec![])], 10, 3).contains("no data"));
        let c = ascii_plot("t", &[("c", vec![(1.0, 5.0), (2.0, 5.0)])], 10, 3);
        assert!(c.contains('*'));
    }

    #[test]
    fn write_file_creates_dirs() {
        let dir = std::env::temp_dir().join("sasgd_report_test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("a/b/out.csv");
        write_file(&path, "x\n").expect("write");
        assert_eq!(fs::read_to_string(&path).expect("read"), "x\n");
        let _ = fs::remove_dir_all(&dir);
    }
}

//! # sasgd — Sparse-Aggregation Distributed SGD
//!
//! Facade crate for the reproduction of *"An efficient, distributed
//! stochastic gradient descent algorithm for deep-learning applications"*
//! (Cong, Bhardwaj, Feng — ICPP 2017). Re-exports every workspace crate
//! under one roof so examples and downstream users need a single
//! dependency.
//!
//! * [`tensor`] — dense `f32` tensors and compute kernels
//! * [`nn`] — layers, backprop, Table I / Table II models
//! * [`data`] — synthetic CIFAR-like / NLC-like datasets
//! * [`comm`] — real-thread collectives and the sharded parameter server
//! * [`simnet`] — discrete-event cluster simulator and cost models
//! * [`core`] — SASGD, Downpour, EAMSGD, the trainer, and the theory module

pub use sasgd_comm as comm;
pub use sasgd_core as core;
pub use sasgd_data as data;
pub use sasgd_nn as nn;
pub use sasgd_simnet as simnet;
pub use sasgd_tensor as tensor;

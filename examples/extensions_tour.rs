//! Tour of the extension features layered on the paper's core: gradient
//! compression, hierarchical aggregation, learning-rate schedules,
//! checkpointing, staleness measurement, and parallel sweeps.
//!
//! ```text
//! cargo run --release --example extensions_tour
//! ```

use sasgd::core::algorithms::GammaP;
use sasgd::core::report::ascii_table;
use sasgd::core::sweep::{run_sweep, summarize, SweepGrid};
use sasgd::core::{train, Algorithm, Compression, LrSchedule, TrainConfig};
use sasgd::data::cifar_like::{generate, CifarLikeConfig};
use sasgd::nn::io::{load_checkpoint, save_checkpoint};
use sasgd::nn::models;
use sasgd::tensor::SeedRng;

fn main() {
    let (train_set, test_set) = generate(&CifarLikeConfig {
        noise: 1.0,
        ..CifarLikeConfig::tiny(512, 128, 10)
    });
    let epochs = 15;

    // 1. A sweep over algorithm variants, run in parallel worker threads.
    println!("== sweep: SASGD variants (p = 8) ==\n");
    let mut cfg = TrainConfig::new(epochs, 8, 0.05, 42);
    cfg.schedule = LrSchedule::Warmup {
        epochs: 2,
        start_frac: 0.2,
    };
    let grid = SweepGrid {
        algorithms: vec![
            Algorithm::Sasgd {
                p: 8,
                t: 5,
                gamma_p: GammaP::OverP,
                compression: None,
            },
            Algorithm::Sasgd {
                p: 8,
                t: 5,
                gamma_p: GammaP::OverP,
                compression: Some(Compression::TopK { ratio: 0.1 }),
            },
            Algorithm::Sasgd {
                p: 8,
                t: 5,
                gamma_p: GammaP::OverP,
                compression: Some(Compression::Uniform8Bit),
            },
            Algorithm::HierarchicalSasgd {
                groups: 4,
                per_group: 2,
                t_local: 2,
                t_global: 4,
                gamma_p: GammaP::OverP,
            },
        ],
        base: cfg,
    };
    let factory = || models::tiny_cnn(10, &mut SeedRng::new(7));
    let results = run_sweep(&grid, &factory, &train_set, &test_set, 2);
    let rows: Vec<Vec<String>> = summarize(&results)
        .into_iter()
        .map(|(label, acc, eps)| vec![label, format!("{:.1}", acc * 100.0), format!("{eps:.3}")])
        .collect();
    println!(
        "{}",
        ascii_table(&["variant", "test acc %", "epoch (s, simulated)"], &rows)
    );

    // 2. Staleness: the quantity SASGD bounds and async methods don't.
    println!("\n== staleness (T = 5, p = 8) ==\n");
    for algo in [
        Algorithm::Sasgd {
            p: 8,
            t: 5,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        Algorithm::Downpour {
            p: 8,
            t: 5,
            staleness_gamma: false,
        },
    ] {
        let cfg = TrainConfig::new(4, 8, 0.02, 1);
        let mut f = || models::tiny_cnn(10, &mut SeedRng::new(7));
        let h = train(&mut f, &train_set, &test_set, &algo, &cfg);
        if let Some(st) = h.staleness {
            println!(
                "  {:<22} mean {:.2}, max {} over {} pushes",
                algo.label(),
                st.mean,
                st.max,
                st.pushes
            );
        }
    }

    // 3. Checkpoint round trip.
    println!("\n== checkpointing ==\n");
    let model = factory();
    let path = std::env::temp_dir().join("sasgd_tour.ckpt");
    save_checkpoint(&model, &path).expect("save checkpoint");
    let mut restored = factory();
    load_checkpoint(&mut restored, &path).expect("load checkpoint");
    println!(
        "  saved and restored {} parameters ({} bytes on disk)",
        model.param_len(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );
    let _ = std::fs::remove_file(&path);
}

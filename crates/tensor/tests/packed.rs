//! Contract tests for the packed tolerance-mode GEMM family and its
//! dispatchers (`gemm_*_ws`).
//!
//! Three properties, matching the `linalg` module-doc contract:
//!
//! 1. **Default is bitwise.** Without the `simd` feature — or with it but
//!    without the [`linalg::set_packed_gemm`] opt-in — every `gemm_*_ws`
//!    dispatch is bitwise identical to the reference `*_into_auto` kernel,
//!    including when someone flips the (then inert) switch.
//! 2. **Tolerance mode is bounded.** The packed kernels may diverge from
//!    the reference, but per element by no more than
//!    `4·k·ε · Σ_l |a_il|·|b_lj|` with `ε = 2⁻²⁴` (a slackened `γ_k`
//!    rounding bound covering both folds), across random ragged shapes.
//! 3. **Dispatch is shape- and mode-aware.** With the mode on, outputs at
//!    or above `par_threshold()` rows take the packed path and smaller
//!    ones the reference path — and both produce correct numbers.

use proptest::prelude::*;
use sasgd_tensor::{linalg, SeedRng, Workspace};
use std::sync::Mutex;

/// Serializes tests that flip the process-global packed-GEMM switch (or
/// read the global path counters) so they can't observe each other.
static MODE_LOCK: Mutex<()> = Mutex::new(());

const EPS_F32: f64 = 1.0 / (1u64 << 24) as f64;

fn rand_mat(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
    SeedRng::new(seed)
        .normal_tensor(&[rows, cols], 1.0)
        .into_vec()
}

/// Per-element tolerance-mode bound: `4·k·ε · Σ_l |a_il|·|b_lj|` for the
/// logical row-major `A: [m,k]`, `B: [k,n]`.
fn assert_within_bound(
    got: &[f32],
    want: &[f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for i in 0..m {
        for j in 0..n {
            let mut mag = 0.0f64;
            for l in 0..k {
                mag += (a[i * k + l] as f64 * b[l * n + j] as f64).abs();
            }
            let bound = 4.0 * k as f64 * EPS_F32 * mag;
            let diff = (got[i * n + j] as f64 - want[i * n + j] as f64).abs();
            assert!(
                diff <= bound,
                "({m},{k},{n}) at ({i},{j}): |{} - {}| = {diff:e} > bound {bound:e}",
                got[i * n + j],
                want[i * n + j]
            );
        }
    }
}

/// Transpose a row-major `rows`×`cols` matrix.
fn transpose(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut t = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            t[c * rows + r] = x[r * cols + c];
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1: the dispatched path is bitwise-reference whenever the
    /// packed mode is not *effectively* on. Without the `simd` feature
    /// this also proves the opt-in switch is inert.
    #[test]
    fn dispatchers_are_bitwise_reference_in_default_mode(
        m in 1usize..200, k in 1usize..40, n in 1usize..40, seed in 0u64..1000
    ) {
        let a = rand_mat(m, k, seed);
        let b = rand_mat(k, n, seed + 1);
        let mut ws = Workspace::new();
        let _guard = MODE_LOCK.lock().unwrap();

        // Without the feature, flipping the switch must change nothing;
        // with the feature, this block simply runs before the opt-in.
        if cfg!(not(feature = "simd")) {
            linalg::set_packed_gemm(true);
            prop_assert!(!linalg::packed_gemm_enabled());
        }
        linalg::set_packed_gemm(cfg!(not(feature = "simd")));

        let mut want = vec![0.0f32; m * n];
        linalg::matmul_into_auto(&mut want, &a, &b, m, k, n);
        let mut got = vec![f32::NAN; m * n];
        linalg::gemm_nn_ws(&mut got, &a, &b, m, k, n, &mut ws);
        prop_assert_eq!(&got, &want);

        let bt = transpose(&b, k, n); // physical [n, k]
        linalg::matmul_nt_into_auto(&mut want, &a, &bt, m, k, n);
        linalg::gemm_nt_ws(&mut got, &a, &bt, m, k, n, &mut ws);
        prop_assert_eq!(&got, &want);

        let at = transpose(&a, m, k); // physical [k, m]
        linalg::matmul_tn_into_auto(&mut want, &at, &b, k, m, n);
        linalg::gemm_tn_ws(&mut got, &at, &b, k, m, n, &mut ws);
        prop_assert_eq!(&got, &want);

        linalg::set_packed_gemm(false);
    }

    /// Property 2: the packed kernels stay within the documented
    /// relative-error bound of the reference, ragged tails included.
    #[test]
    fn packed_error_vs_reference_is_bounded(
        m in 1usize..80, k in 1usize..150, n in 1usize..80, seed in 0u64..1000
    ) {
        let a = rand_mat(m, k, seed);
        let b = rand_mat(k, n, seed + 1);
        let mut ws = Workspace::new();
        let mut want = vec![0.0f32; m * n];
        let mut got = vec![f32::NAN; m * n];

        linalg::matmul_into_auto(&mut want, &a, &b, m, k, n);
        linalg::matmul_packed_into_ws(&mut got, &a, &b, m, k, n, &mut ws);
        assert_within_bound(&got, &want, &a, &b, m, k, n);

        let bt = transpose(&b, k, n);
        linalg::matmul_nt_into_auto(&mut want, &a, &bt, m, k, n);
        linalg::matmul_nt_packed_into_ws(&mut got, &a, &bt, m, k, n, &mut ws);
        assert_within_bound(&got, &want, &a, &b, m, k, n);

        let at = transpose(&a, m, k);
        linalg::matmul_tn_into_auto(&mut want, &at, &b, k, m, n);
        linalg::matmul_tn_packed_into_ws(&mut got, &at, &b, k, m, n, &mut ws);
        assert_within_bound(&got, &want, &a, &b, m, k, n);
    }
}

/// Property 3: with the mode on (and the `simd` feature present), shape
/// decides the path — packed at or above `par_threshold()` output rows,
/// reference below — and the path counters prove which one ran.
#[cfg(feature = "simd")]
#[test]
fn dispatch_picks_packed_above_threshold_and_reference_below() {
    let _guard = MODE_LOCK.lock().unwrap();
    let mut ws = Workspace::new();
    let threshold = linalg::par_threshold();
    let (k, n) = (33usize, 29usize);

    linalg::set_packed_gemm(true);
    assert!(linalg::packed_gemm_enabled());
    linalg::reset_gemm_path_counts();

    // Below the cutover: reference path.
    let small_m = threshold - 1;
    let a = rand_mat(small_m, k, 7);
    let b = rand_mat(k, n, 8);
    let mut want = vec![0.0f32; small_m * n];
    linalg::matmul_into_auto(&mut want, &a, &b, small_m, k, n);
    let mut got = vec![f32::NAN; small_m * n];
    linalg::gemm_nn_ws(&mut got, &a, &b, small_m, k, n, &mut ws);
    assert_eq!(
        got, want,
        "below-threshold dispatch must be bitwise-reference"
    );
    assert_eq!(linalg::gemm_path_counts(), (0, 1));

    // At/above the cutover: packed path, correct within the bound.
    let big_m = threshold.max(64);
    let a = rand_mat(big_m, k, 9);
    let b = rand_mat(k, n, 10);
    let mut want = vec![0.0f32; big_m * n];
    linalg::matmul_into_auto(&mut want, &a, &b, big_m, k, n);
    let mut got = vec![f32::NAN; big_m * n];
    linalg::gemm_nn_ws(&mut got, &a, &b, big_m, k, n, &mut ws);
    assert_eq!(
        linalg::gemm_path_counts(),
        (1, 1),
        "big GEMM must take the packed path"
    );
    assert_within_bound(&got, &want, &a, &b, big_m, k, n);

    // The packed dispatch must have recorded its tile plan.
    assert!(
        sasgd_tensor::tune::recorded_count() > 0,
        "packed dispatch must record its tile plan"
    );

    linalg::set_packed_gemm(false);
    linalg::reset_gemm_path_counts();
}

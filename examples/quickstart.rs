//! Quickstart: train a small CNN with SASGD on a synthetic image dataset.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sasgd::core::algorithms::GammaP;
use sasgd::core::report::ascii_table;
use sasgd::core::{train, Algorithm, TrainConfig};
use sasgd::data::cifar_like::{generate, CifarLikeConfig};
use sasgd::nn::models;
use sasgd::tensor::SeedRng;

fn main() {
    // 1. A dataset: 512 synthetic 8×8 RGB images in 10 classes.
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(512, 128, 10));
    println!(
        "dataset: {} train / {} test samples, dims {:?}",
        train_set.len(),
        test_set.len(),
        train_set.sample_dims()
    );

    // 2. A model factory: every learner replica starts from the same
    //    parameters (same seed).
    let mut factory = || models::tiny_cnn(10, &mut SeedRng::new(7));
    println!("\nmodel:\n{}", factory().summary());

    // 3. SASGD (Algorithm 1 of the paper): 4 learners, allreduce every
    //    T = 8 minibatches, global rate γp = γ/4.
    let algo = Algorithm::sasgd(4, 8, GammaP::OverP);
    let cfg = TrainConfig::new(15, 8, 0.05, 42);
    let history = train(&mut factory, &train_set, &test_set, &algo, &cfg);

    // 4. Inspect the run.
    let rows: Vec<Vec<String>> = history
        .records
        .iter()
        .step_by(3)
        .map(|r| {
            vec![
                format!("{:.0}", r.epoch),
                format!("{:.3}", r.train_loss),
                format!("{:.1}", r.train_acc * 100.0),
                format!("{:.1}", r.test_acc * 100.0),
                format!("{:.2}", r.compute_seconds),
                format!("{:.2}", r.comm_seconds),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &[
                "epoch",
                "train loss",
                "train acc %",
                "test acc %",
                "compute (s)",
                "comm (s)"
            ],
            &rows,
        )
    );
    println!(
        "final test accuracy: {:.1} % | simulated epoch time {:.2} s ({:.0} % comm)",
        history.final_test_acc() * 100.0,
        history.epoch_seconds(),
        history.comm_fraction() * 100.0
    );
}

//! Parameter sweeps: run a grid of algorithm configurations, in parallel
//! across OS threads, and collect the histories.
//!
//! Every figure in the paper is a sweep — over `p`, over `T`, over
//! algorithms. This module is the public API for users running their own:
//! build a [`SweepGrid`], call [`run_sweep`], get one [`History`] per
//! configuration. Simulated runs are single-threaded and independent, so
//! the sweep parallelizes embarrassingly; each run stays bit-identical to
//! a standalone [`crate::train`] call with the same seed.

use sasgd_data::Dataset;
use sasgd_nn::Model;

use crate::algorithms::Algorithm;
use crate::history::History;
use crate::trainer::{train, TrainConfig};

/// A grid of experiments sharing one dataset and base configuration.
pub struct SweepGrid {
    /// The algorithm configurations to run.
    pub algorithms: Vec<Algorithm>,
    /// Base trainer configuration; each run derives its seed from
    /// `base.seed` plus the configuration index.
    pub base: TrainConfig,
}

impl SweepGrid {
    /// Grid over learner counts for a fixed algorithm shape.
    pub fn over_p(ps: &[usize], make: impl Fn(usize) -> Algorithm, base: TrainConfig) -> Self {
        SweepGrid {
            algorithms: ps.iter().map(|&p| make(p)).collect(),
            base,
        }
    }

    /// Grid over aggregation intervals.
    pub fn over_t(ts: &[usize], make: impl Fn(usize) -> Algorithm, base: TrainConfig) -> Self {
        SweepGrid {
            algorithms: ts.iter().map(|&t| make(t)).collect(),
            base,
        }
    }
}

/// One sweep outcome.
pub struct SweepResult {
    /// The configuration that produced it.
    pub algorithm: Algorithm,
    /// Its training history.
    pub history: History,
}

/// Run every configuration in the grid, `threads` at a time (0 = one
/// thread per configuration). Results come back in grid order regardless
/// of completion order.
pub fn run_sweep(
    grid: &SweepGrid,
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    threads: usize,
) -> Vec<SweepResult> {
    let n = grid.algorithms.len();
    let workers = if threads == 0 {
        n.max(1)
    } else {
        threads.max(1)
    };
    let mut results: Vec<Option<SweepResult>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<&mut Option<SweepResult>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let algo = grid.algorithms[i];
                let mut cfg = grid.base.clone();
                cfg.seed = grid.base.seed.wrapping_add(i as u64);
                let mut f = factory;
                let history = train(&mut f, train_set, test_set, &algo, &cfg);
                **slots[i].lock().expect("slot lock") = Some(SweepResult {
                    algorithm: algo,
                    history,
                });
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every configuration ran"))
        .collect()
}

/// Summarize a sweep as `(label, final test accuracy, epoch seconds)` rows
/// for quick tabulation.
pub fn summarize(results: &[SweepResult]) -> Vec<(String, f32, f64)> {
    results
        .iter()
        .map(|r| {
            (
                r.algorithm.label(),
                r.history.final_test_acc(),
                r.history.epoch_seconds(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::GammaP;
    use sasgd_data::cifar_like::{generate, CifarLikeConfig};
    use sasgd_nn::models;
    use sasgd_simnet::JitterModel;
    use sasgd_tensor::SeedRng;

    fn setup() -> (Dataset, Dataset, TrainConfig) {
        let (train_set, test_set) = generate(&CifarLikeConfig::tiny(96, 24, 3));
        let mut cfg = TrainConfig::new(2, 8, 0.05, 42);
        cfg.jitter = JitterModel::none();
        (train_set, test_set, cfg)
    }

    #[test]
    fn sweep_matches_standalone_runs() {
        let (train_set, test_set, cfg) = setup();
        let grid = SweepGrid::over_p(
            &[1, 2, 4],
            |p| Algorithm::Sasgd {
                p,
                t: 2,
                gamma_p: GammaP::OverP,
                compression: None,
            },
            cfg.clone(),
        );
        let factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let results = run_sweep(&grid, &factory, &train_set, &test_set, 2);
        assert_eq!(results.len(), 3);
        // Each entry equals the standalone run with the derived seed.
        for (i, r) in results.iter().enumerate() {
            let mut solo_cfg = cfg.clone();
            solo_cfg.seed = cfg.seed + i as u64;
            let mut f = || models::tiny_cnn(3, &mut SeedRng::new(7));
            let solo = train(
                &mut f,
                &train_set,
                &test_set,
                &grid.algorithms[i],
                &solo_cfg,
            );
            assert_eq!(
                r.history.records.last().expect("r").train_loss,
                solo.records.last().expect("r").train_loss,
                "config {i} must match its standalone run"
            );
        }
    }

    #[test]
    fn results_preserve_grid_order() {
        let (train_set, test_set, cfg) = setup();
        let grid = SweepGrid::over_t(
            &[1, 4],
            |t| Algorithm::Sasgd {
                p: 2,
                t,
                gamma_p: GammaP::OverP,
                compression: None,
            },
            cfg,
        );
        let factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let results = run_sweep(&grid, &factory, &train_set, &test_set, 0);
        assert_eq!(results[0].algorithm.interval(), 1);
        assert_eq!(results[1].algorithm.interval(), 4);
        let rows = summarize(&results);
        assert!(rows[0].0.contains("T=1"));
        assert!(rows[0].1 > 0.0);
    }

    #[test]
    fn single_worker_equals_many_workers() {
        let (train_set, test_set, cfg) = setup();
        let grid = SweepGrid::over_p(
            &[1, 2],
            |p| Algorithm::Sasgd {
                p,
                t: 1,
                gamma_p: GammaP::OverP,
                compression: None,
            },
            cfg,
        );
        let factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let serial = run_sweep(&grid, &factory, &train_set, &test_set, 1);
        let parallel = run_sweep(&grid, &factory, &train_set, &test_set, 0);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(
                a.history.records.last().expect("r").train_loss,
                b.history.records.last().expect("r").train_loss
            );
        }
    }
}

//! Scaled experiment workloads for the convergence figures.
//!
//! The paper trains a 0.5 M-parameter CNN for 100 epochs × 50 000 images
//! and a 1.7 M-parameter text CNN for 200 epochs — GPU-scale work. The
//! convergence *phenomena* (async staleness degrading accuracy with `p`,
//! sample complexity growing with `T`, learning-rate regimes) are
//! optimization effects that reproduce at smaller scale, so the harness
//! runs geometry-preserving miniatures and records the deltas in
//! EXPERIMENTS.md.

use sasgd_data::cifar_like::{self, CifarLikeConfig};
use sasgd_data::nlc_like::{self, NlcLikeConfig};
use sasgd_data::Dataset;
use sasgd_nn::{models, Model};
use sasgd_tensor::SeedRng;

/// Experiment scale selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale CPU runs (default for `repro all`): tiny CNN on 8×8
    /// images / small text CNN, hundreds of samples, tens of epochs.
    Tiny,
    /// The width-scaled Table I network on full 32×32 geometry and a
    /// mid-size NLC network; tens of minutes.
    Small,
    /// Closer to the paper (full Table I / Table II architectures,
    /// thousands of samples); hours on CPU.
    Large,
}

impl Scale {
    /// Parse `0|1|2` or `tiny|small|large`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "0" | "tiny" => Some(Scale::Tiny),
            "1" | "small" => Some(Scale::Small),
            "2" | "large" => Some(Scale::Large),
            _ => None,
        }
    }
}

/// A ready-to-train workload: datasets plus a replica factory.
pub struct ConvergenceWorkload {
    /// Display name ("CIFAR-like" / "NLC-like").
    pub name: &'static str,
    /// Training split.
    pub train: Dataset,
    /// Test split.
    pub test: Dataset,
    /// Builds identically initialized model replicas.
    pub factory: Box<dyn Fn() -> Model + Sync>,
    /// Minibatch size the paper uses for this workload (scaled).
    pub batch: usize,
    /// The "practical" learning rate (the paper's γ = 0.1 analogue).
    pub gamma_hi: f32,
    /// Collective epochs to train in the figure runs.
    pub epochs: usize,
}

/// The CIFAR-10-like convergence workload at `scale`.
pub fn cifar_workload(scale: Scale, epochs_override: Option<usize>) -> ConvergenceWorkload {
    let (cfg, batch, gamma_hi, epochs) = match scale {
        Scale::Tiny => (
            CifarLikeConfig {
                noise: 1.0,
                max_shift: 2,
                ..CifarLikeConfig::tiny(512, 256, 10)
            },
            8,
            0.05,
            30,
        ),
        Scale::Small => (
            CifarLikeConfig {
                train: 2_048,
                test: 512,
                noise: 0.6,
                ..CifarLikeConfig::default()
            },
            16,
            0.1,
            30,
        ),
        Scale::Large => (CifarLikeConfig::scaled(10_000, 2_000), 64, 0.1, 60),
    };
    let (train, test) = cifar_like::generate(&cfg);
    let factory: Box<dyn Fn() -> Model + Sync> = match scale {
        Scale::Tiny => Box::new(|| models::tiny_cnn(10, &mut SeedRng::new(0xC1F))),
        Scale::Small => Box::new(|| models::cifar_cnn_scaled(8, &mut SeedRng::new(0xC1F))),
        Scale::Large => Box::new(|| models::cifar_cnn_scaled(2, &mut SeedRng::new(0xC1F))),
    };
    ConvergenceWorkload {
        name: "CIFAR-like",
        train,
        test,
        factory,
        batch,
        gamma_hi,
        epochs: epochs_override.unwrap_or(epochs),
    }
}

/// The NLC-F-like convergence workload at `scale`.
pub fn nlc_workload(scale: Scale, epochs_override: Option<usize>) -> ConvergenceWorkload {
    let (cfg, batch, gamma_hi, epochs) = match scale {
        Scale::Tiny => (
            NlcLikeConfig {
                train: 800,
                test: 200,
                ..NlcLikeConfig::tiny(800, 200, 20)
            },
            1,
            0.05,
            40,
        ),
        Scale::Small => (NlcLikeConfig::scaled(1_000, 300, 60), 4, 0.08, 40),
        Scale::Large => (NlcLikeConfig::default(), 1, 0.05, 80),
    };
    let (train, test) = nlc_like::generate(&cfg);
    let factory: Box<dyn Fn() -> Model + Sync> = match scale {
        Scale::Tiny => Box::new(move || {
            models::nlc_net_custom(8, 12, 24, 64, 64, 20, &mut SeedRng::new(0x41c))
        }),
        Scale::Small => Box::new(move || {
            models::nlc_net_custom(20, 100, 60, 200, 200, 60, &mut SeedRng::new(0x41c))
        }),
        Scale::Large => Box::new(move || models::nlc_net(20, &mut SeedRng::new(0x41c))),
    };
    ConvergenceWorkload {
        name: "NLC-like",
        train,
        test,
        factory,
        batch,
        gamma_hi,
        epochs: epochs_override.unwrap_or(epochs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("0"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("2"), Some(Scale::Large));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn tiny_workloads_are_consistent() {
        let c = cifar_workload(Scale::Tiny, Some(3));
        assert_eq!(c.epochs, 3);
        assert_eq!(c.train.sample_dims(), (c.factory)().input_dims());
        assert_eq!(c.train.classes(), 10);
        let n = nlc_workload(Scale::Tiny, None);
        assert_eq!(n.train.sample_dims(), (n.factory)().input_dims());
        assert_eq!(n.train.classes(), 20);
    }

    #[test]
    fn factories_are_deterministic() {
        let c = cifar_workload(Scale::Tiny, None);
        let m1 = (c.factory)();
        let m2 = (c.factory)();
        assert_eq!(m1.param_vector(), m2.param_vector());
    }
}

//! Deterministic discrete-event machinery.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time in seconds. A newtype keeps simulated seconds from being
/// confused with wall-clock measurements in the benches.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd, Default)]
pub struct VirtualTime(pub f64);

impl VirtualTime {
    /// Zero time.
    pub fn zero() -> Self {
        VirtualTime(0.0)
    }

    /// Advance by `dt` seconds.
    #[must_use]
    pub fn plus(self, dt: f64) -> Self {
        VirtualTime(self.0 + dt)
    }

    /// Seconds since time zero.
    pub fn seconds(self) -> f64 {
        self.0
    }
}

struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (time, seq): earlier time first, FIFO on ties.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of timestamped events with deterministic FIFO
/// tie-breaking — the heart of the event-driven trainer.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `payload` at `time`.
    ///
    /// # Panics
    /// Panics on NaN times (they would corrupt the heap order).
    pub fn push(&mut self, time: VirtualTime, payload: T) {
        assert!(!time.0.is_nan(), "NaN event time");
        self.heap.push(Entry {
            time: time.0,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(VirtualTime, T)> {
        self.heap.pop().map(|e| (VirtualTime(e.time), e.payload))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|e| VirtualTime(e.time))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

struct RankEntry<T> {
    time: f64,
    rank: usize,
    payload: T,
}

impl<T> PartialEq for RankEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.rank == other.rank
    }
}
impl<T> Eq for RankEntry<T> {}

impl<T> Ord for RankEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (time, rank): earlier time first, lowest rank on
        // ties — the event-driven engine's determinism contract.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.rank.cmp(&self.rank))
    }
}
impl<T> PartialOrd for RankEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of per-rank events ordered by `(time, rank)` — unlike
/// [`EventQueue`], ties break on the *rank* that scheduled the event, not
/// insertion order, so the event-driven trainer's pop sequence is a pure
/// function of the virtual clocks and never of scheduling history.
pub struct RankQueue<T> {
    heap: BinaryHeap<RankEntry<T>>,
}

impl<T> Default for RankQueue<T> {
    fn default() -> Self {
        RankQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<T> RankQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `payload` for `rank` at `time`.
    ///
    /// # Panics
    /// Panics on NaN times (they would corrupt the heap order).
    pub fn push(&mut self, time: VirtualTime, rank: usize, payload: T) {
        assert!(!time.0.is_nan(), "NaN event time");
        self.heap.push(RankEntry {
            time: time.0,
            rank,
            payload,
        });
    }

    /// Remove and return the earliest event (lowest rank on time ties).
    pub fn pop(&mut self) -> Option<(VirtualTime, usize, T)> {
        self.heap
            .pop()
            .map(|e| (VirtualTime(e.time), e.rank, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(VirtualTime(3.0), "c");
        q.push(VirtualTime(1.0), "a");
        q.push(VirtualTime(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(VirtualTime(1.0), 1);
        q.push(VirtualTime(1.0), 2);
        q.push(VirtualTime(1.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(VirtualTime(5.0), ());
        q.push(VirtualTime(4.0), ());
        assert_eq!(q.peek_time(), Some(VirtualTime(4.0)));
        assert_eq!(q.len(), 2);
        let (t, ()) = q.pop().expect("event");
        assert_eq!(t, VirtualTime(4.0));
    }

    #[test]
    fn virtual_time_arithmetic() {
        let t = VirtualTime::zero().plus(1.5).plus(0.25);
        assert!((t.seconds() - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN event time")]
    fn nan_time_rejected() {
        EventQueue::new().push(VirtualTime(f64::NAN), ());
    }

    #[test]
    fn rank_queue_breaks_ties_by_rank_not_insertion() {
        let mut q = RankQueue::new();
        // Inserted high-rank first: insertion order must not matter.
        q.push(VirtualTime(1.0), 3, "r3");
        q.push(VirtualTime(1.0), 0, "r0");
        q.push(VirtualTime(1.0), 2, "r2");
        q.push(VirtualTime(0.5), 5, "early");
        let order: Vec<(usize, &str)> =
            std::iter::from_fn(|| q.pop().map(|(_, r, p)| (r, p))).collect();
        assert_eq!(order, vec![(5, "early"), (0, "r0"), (2, "r2"), (3, "r3")]);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN event time")]
    fn rank_queue_rejects_nan() {
        RankQueue::new().push(VirtualTime(f64::NAN), 0, ());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(VirtualTime(1.0), 1);
        q.push(VirtualTime(10.0), 10);
        assert_eq!(q.pop().map(|(_, p)| p), Some(1));
        q.push(VirtualTime(5.0), 5);
        assert_eq!(q.pop().map(|(_, p)| p), Some(5));
        assert_eq!(q.pop().map(|(_, p)| p), Some(10));
        assert!(q.is_empty());
    }
}

//! Temporal (1-D) convolution and pooling for the NLC-F network (Table II).
//!
//! Inputs are `[n, len, dim]` sequences of word embeddings. The temporal
//! convolution with window `k` concatenates `k` consecutive timesteps and
//! applies a linear map — the Torch `nn.TemporalConvolution` the paper's
//! NLC-F model uses.

use sasgd_tensor::{linalg, SeedRng, Tensor, Workspace};

use crate::init;
use crate::layer::{Ctx, Layer};

/// 1-D convolution over the time axis: `[len, din] -> [len-k+1, nkern]`.
pub struct TemporalConv1d {
    din: usize,
    nkern: usize,
    window: usize,
    /// `[window*din, nkern]`
    weight: Tensor,
    bias: Vec<f32>,
    dweight: Tensor,
    dbias: Vec<f32>,
    /// Unfolded input `[n*(len-k+1), window*din]` cached for backward.
    cached_unfold: Option<Tensor>,
    cached_in_dims: Vec<usize>,
}

impl TemporalConv1d {
    /// New temporal convolution (`nkern` kernels of width `window` over
    /// `din`-dimensional timesteps).
    pub fn new(din: usize, nkern: usize, window: usize, rng: &mut SeedRng) -> Self {
        assert!(window >= 1, "window must be >= 1");
        let fan_in = window * din;
        TemporalConv1d {
            din,
            nkern,
            window,
            weight: init::torch_uniform(rng, &[fan_in, nkern], fan_in),
            bias: init::torch_uniform_bias(rng, nkern, fan_in),
            dweight: Tensor::zeros(&[fan_in, nkern]),
            dbias: vec![0.0; nkern],
            cached_unfold: None,
            cached_in_dims: Vec::new(),
        }
    }

    fn unfold(&self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        let [n, len, din] = [input.dims()[0], input.dims()[1], input.dims()[2]];
        let olen = len + 1 - self.window;
        let fan_in = self.window * din;
        // Every row is overwritten below, so a stale workspace buffer is fine.
        let mut od = ws.take_f32_uninit(n * olen * fan_in);
        let id = input.as_slice();
        for s in 0..n {
            for t in 0..olen {
                let src = (s * len + t) * din;
                let dst = (s * olen + t) * fan_in;
                od[dst..dst + fan_in].copy_from_slice(&id[src..src + fan_in]);
            }
        }
        Tensor::from_vec(od, &[n * olen, fan_in])
    }
}

impl Layer for TemporalConv1d {
    fn name(&self) -> &'static str {
        "TemporalConv1d"
    }

    fn forward(&mut self, input: Tensor, ctx: &mut Ctx) -> Tensor {
        let [n, len, din] = [input.dims()[0], input.dims()[1], input.dims()[2]];
        assert_eq!(din, self.din, "timestep width mismatch");
        assert!(len >= self.window, "sequence shorter than window");
        let olen = len + 1 - self.window;
        let rows = n * olen;
        let unfolded = self.unfold(&input, &mut ctx.ws);
        let mut out = Tensor::zeros_in(&[rows, self.nkern], &mut ctx.ws);
        linalg::gemm_nn_ws(
            out.as_mut_slice(),
            unfolded.as_slice(),
            self.weight.as_slice(),
            rows,
            self.window * din,
            self.nkern,
            &mut ctx.ws,
        );
        linalg::add_bias_rows(&mut out, &self.bias);
        if ctx.training {
            self.cached_unfold = Some(unfolded);
            self.cached_in_dims = input.dims().to_vec();
        } else {
            ctx.ws.recycle(unfolded);
        }
        ctx.ws.recycle(input);
        out.reshape(&[n, olen, self.nkern])
    }

    fn backward(&mut self, grad_out: Tensor, ctx: &mut Ctx) -> Tensor {
        let unfolded = self.cached_unfold.take().expect("backward without forward");
        let [n, len, din] = [
            self.cached_in_dims[0],
            self.cached_in_dims[1],
            self.cached_in_dims[2],
        ];
        let olen = len + 1 - self.window;
        let rows = n * olen;
        let fan_in = self.window * din;
        let g = grad_out.reshape(&[rows, self.nkern]);
        let mut dw = Tensor::zeros_in(&[fan_in, self.nkern], &mut ctx.ws);
        linalg::gemm_tn_ws(
            dw.as_mut_slice(),
            unfolded.as_slice(),
            g.as_slice(),
            rows,
            fan_in,
            self.nkern,
            &mut ctx.ws,
        );
        self.dweight.add_assign(&dw);
        ctx.ws.recycle(dw);
        linalg::col_sums_into(&g, &mut self.dbias);
        // d(unfolded) = G W^T, then fold overlapping windows back.
        let mut dunf = Tensor::zeros_in(&[rows, fan_in], &mut ctx.ws);
        linalg::gemm_nt_ws(
            dunf.as_mut_slice(),
            g.as_slice(),
            self.weight.as_slice(),
            rows,
            self.nkern,
            fan_in,
            &mut ctx.ws,
        );
        let mut din_t = Tensor::zeros_in(&[n, len, din], &mut ctx.ws);
        let dd = din_t.as_mut_slice();
        let ud = dunf.as_slice();
        for s in 0..n {
            for t in 0..olen {
                let src = (s * olen + t) * fan_in;
                let dst = (s * len + t) * din;
                for k in 0..fan_in {
                    dd[dst + k] += ud[src + k];
                }
            }
        }
        ctx.ws.recycle(dunf);
        ctx.ws.recycle(unfolded);
        ctx.ws.recycle(g);
        din_t
    }

    fn param_len(&self) -> usize {
        self.weight.numel() + self.bias.len()
    }

    fn read_params(&self, out: &mut [f32]) {
        let w = self.weight.numel();
        out[..w].copy_from_slice(self.weight.as_slice());
        out[w..].copy_from_slice(&self.bias);
    }

    fn write_params(&mut self, src: &[f32]) {
        let w = self.weight.numel();
        self.weight.as_mut_slice().copy_from_slice(&src[..w]);
        self.bias.copy_from_slice(&src[w..]);
    }

    fn read_grads(&self, out: &mut [f32]) {
        let w = self.dweight.numel();
        out[..w].copy_from_slice(self.dweight.as_slice());
        out[w..].copy_from_slice(&self.dbias);
    }

    fn zero_grads(&mut self) {
        self.dweight.zero_();
        self.dbias.iter_mut().for_each(|x| *x = 0.0);
    }

    fn out_shape(&self, in_dims: &[usize]) -> Vec<usize> {
        assert_eq!(in_dims.len(), 2, "TemporalConv1d expects [len, dim]");
        assert_eq!(in_dims[1], self.din);
        vec![in_dims[0] + 1 - self.window, self.nkern]
    }

    fn macs(&self, in_dims: &[usize]) -> u64 {
        let olen = in_dims[0] + 1 - self.window;
        (olen * self.window * self.din * self.nkern) as u64
    }
}

/// Max-pool over the time axis: `[len, dim] -> [len/stride-ish, dim]`
/// (window `w`, stride `w`; the paper's `(2, 1)` pooling).
pub struct TemporalMaxPool {
    window: usize,
    /// Persistent argmax buffer, refilled each forward.
    cached_argmax: Vec<u32>,
    argmax_valid: bool,
    cached_in_dims: Vec<usize>,
}

impl TemporalMaxPool {
    /// New pool with window = stride = `window`.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1);
        TemporalMaxPool {
            window,
            cached_argmax: Vec::new(),
            argmax_valid: false,
            cached_in_dims: Vec::new(),
        }
    }
}

impl Layer for TemporalMaxPool {
    fn name(&self) -> &'static str {
        "TemporalMaxPool"
    }

    fn forward(&mut self, input: Tensor, ctx: &mut Ctx) -> Tensor {
        let [n, len, dim] = [input.dims()[0], input.dims()[1], input.dims()[2]];
        let olen = len / self.window;
        assert!(olen >= 1, "sequence shorter than pool window");
        let mut out = Tensor::zeros_in(&[n, olen, dim], &mut ctx.ws);
        self.cached_argmax.resize(n * olen * dim, 0);
        let argmax = &mut self.cached_argmax;
        let id = input.as_slice();
        let od = out.as_mut_slice();
        for s in 0..n {
            for t in 0..olen {
                for d in 0..dim {
                    let mut best = f32::NEG_INFINITY;
                    let mut bidx = 0usize;
                    for k in 0..self.window {
                        let idx = (s * len + t * self.window + k) * dim + d;
                        if id[idx] > best {
                            best = id[idx];
                            bidx = idx;
                        }
                    }
                    let o = (s * olen + t) * dim + d;
                    od[o] = best;
                    argmax[o] = bidx as u32;
                }
            }
        }
        if ctx.training {
            self.argmax_valid = true;
            self.cached_in_dims = input.dims().to_vec();
        }
        ctx.ws.recycle(input);
        out
    }

    fn backward(&mut self, grad_out: Tensor, ctx: &mut Ctx) -> Tensor {
        assert!(self.argmax_valid, "backward without forward");
        self.argmax_valid = false;
        let mut din = Tensor::zeros_in(&self.cached_in_dims, &mut ctx.ws);
        let dd = din.as_mut_slice();
        for (g, &idx) in grad_out.as_slice().iter().zip(&self.cached_argmax) {
            dd[idx as usize] += g;
        }
        ctx.ws.recycle(grad_out);
        din
    }

    fn out_shape(&self, in_dims: &[usize]) -> Vec<usize> {
        vec![in_dims[0] / self.window, in_dims[1]]
    }

    fn macs(&self, in_dims: &[usize]) -> u64 {
        in_dims.iter().product::<usize>() as u64
    }
}

/// Reduce the whole time axis to its per-feature maximum:
/// `[len, dim] -> [dim]`. Bridges the pooled sequence to the fixed-width
/// fully connected stack of Table II (max-over-time, Collobert-style).
#[derive(Default)]
pub struct GlobalMaxOverTime {
    /// Persistent argmax buffer, refilled each forward.
    cached_argmax: Vec<u32>,
    argmax_valid: bool,
    cached_in_dims: Vec<usize>,
}

impl GlobalMaxOverTime {
    /// New layer.
    pub fn new() -> Self {
        GlobalMaxOverTime::default()
    }
}

impl Layer for GlobalMaxOverTime {
    fn name(&self) -> &'static str {
        "GlobalMaxOverTime"
    }

    fn forward(&mut self, input: Tensor, ctx: &mut Ctx) -> Tensor {
        let [n, len, dim] = [input.dims()[0], input.dims()[1], input.dims()[2]];
        let mut out = Tensor::zeros_in(&[n, dim], &mut ctx.ws);
        self.cached_argmax.resize(n * dim, 0);
        let argmax = &mut self.cached_argmax;
        let id = input.as_slice();
        let od = out.as_mut_slice();
        for s in 0..n {
            for d in 0..dim {
                let mut best = f32::NEG_INFINITY;
                let mut bidx = 0usize;
                for t in 0..len {
                    let idx = (s * len + t) * dim + d;
                    if id[idx] > best {
                        best = id[idx];
                        bidx = idx;
                    }
                }
                od[s * dim + d] = best;
                argmax[s * dim + d] = bidx as u32;
            }
        }
        if ctx.training {
            self.argmax_valid = true;
            self.cached_in_dims = input.dims().to_vec();
        }
        ctx.ws.recycle(input);
        out
    }

    fn backward(&mut self, grad_out: Tensor, ctx: &mut Ctx) -> Tensor {
        assert!(self.argmax_valid, "backward without forward");
        self.argmax_valid = false;
        let mut din = Tensor::zeros_in(&self.cached_in_dims, &mut ctx.ws);
        let dd = din.as_mut_slice();
        for (g, &idx) in grad_out.as_slice().iter().zip(&self.cached_argmax) {
            dd[idx as usize] += g;
        }
        ctx.ws.recycle(grad_out);
        din
    }

    fn out_shape(&self, in_dims: &[usize]) -> Vec<usize> {
        vec![in_dims[1]]
    }

    fn macs(&self, in_dims: &[usize]) -> u64 {
        in_dims.iter().product::<usize>() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shapes_match_table2() {
        let mut rng = SeedRng::new(1);
        let c = TemporalConv1d::new(200, 1000, 2, &mut rng);
        assert_eq!(c.param_len(), 200 * 2 * 1000 + 1000); // 401,000
        assert_eq!(c.out_shape(&[20, 200]), vec![19, 1000]);
    }

    #[test]
    fn conv_window1_equals_linear_map() {
        // With window 1 the temporal conv is a per-timestep linear layer.
        let mut rng = SeedRng::new(2);
        let mut c = TemporalConv1d::new(3, 2, 1, &mut rng);
        let x = rng.normal_tensor(&[1, 4, 3], 1.0);
        let mut ctx = Ctx::eval();
        let y = c.forward(x.clone(), &mut ctx);
        assert_eq!(y.dims(), &[1, 4, 2]);
        // Manual check of one timestep.
        let mut params = vec![0.0; c.param_len()];
        c.read_params(&mut params);
        let (w, b) = params.split_at(6);
        let t0 = &x.as_slice()[0..3];
        for j in 0..2 {
            let expect = t0[0] * w[j] + t0[1] * w[2 + j] + t0[2] * w[4 + j] + b[j];
            assert!((y.as_slice()[j] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn conv_backward_matches_fd() {
        let mut rng = SeedRng::new(3);
        let mut c = TemporalConv1d::new(3, 2, 2, &mut rng);
        let x = rng.normal_tensor(&[2, 5, 3], 1.0);
        let mut ctx = Ctx::train(SeedRng::new(0));
        let y = c.forward(x.clone(), &mut ctx);
        let dx = c.backward(Tensor::full(y.dims(), 1.0), &mut ctx);
        let mut grads = vec![0.0; c.param_len()];
        c.read_grads(&mut grads);
        let mut params = vec![0.0; c.param_len()];
        c.read_params(&mut params);
        let eps = 1e-2f32;
        let base = c.forward(x.clone(), &mut Ctx::eval()).sum();
        for &k in &[0usize, 5, 11, 12, 13] {
            let mut p = params.clone();
            p[k] += eps;
            c.write_params(&p);
            let up = c.forward(x.clone(), &mut Ctx::eval()).sum();
            c.write_params(&params);
            let fd = (up - base) / eps;
            assert!(
                (fd - grads[k]).abs() < 0.05 * (1.0 + grads[k].abs()),
                "p[{k}] {fd} vs {}",
                grads[k]
            );
        }
        // Input gradient via fd on a couple of coordinates.
        for &k in &[0usize, 7, 20] {
            let mut xp = x.clone();
            xp.as_mut_slice()[k] += eps;
            let up = c.forward(xp, &mut Ctx::eval()).sum();
            let fd = (up - base) / eps;
            assert!((fd - dx.as_slice()[k]).abs() < 0.05 * (1.0 + fd.abs()));
        }
    }

    #[test]
    fn temporal_pool_and_global_max() {
        let x = Tensor::from_vec(
            vec![
                1.0, 10.0, // t0
                2.0, 9.0, // t1
                5.0, 0.0, // t2
                4.0, 8.0, // t3
            ],
            &[1, 4, 2],
        );
        let mut p = TemporalMaxPool::new(2);
        let mut ctx = Ctx::train(SeedRng::new(0));
        let y = p.forward(x.clone(), &mut ctx);
        assert_eq!(y.dims(), &[1, 2, 2]);
        assert_eq!(y.as_slice(), &[2.0, 10.0, 5.0, 8.0]);
        let dx = p.backward(Tensor::full(&[1, 2, 2], 1.0), &mut ctx);
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0]);

        let mut g = GlobalMaxOverTime::new();
        let z = g.forward(x, &mut ctx);
        assert_eq!(z.dims(), &[1, 2]);
        assert_eq!(z.as_slice(), &[5.0, 10.0]);
        let dz = g.backward(Tensor::full(&[1, 2], 2.0), &mut ctx);
        assert_eq!(dz.as_slice(), &[0.0, 2.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn odd_length_pool_truncates() {
        let p = TemporalMaxPool::new(2);
        assert_eq!(p.out_shape(&[5, 7]), vec![2, 7]);
    }
}

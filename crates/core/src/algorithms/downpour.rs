//! Downpour ASGD (Dean et al., NIPS 2012) — the paper's main baseline.
//!
//! Dean et al. "divide the training data into a number of subsets and run
//! a copy of the model on each of these subsets": each asynchronous
//! learner iterates *its own shard* (reshuffled every pass), exactly like
//! SASGD's learners partition the data. Every `T` minibatches a learner
//! pushes its accumulated gradient to the parameter server — which applies
//! `x ← x − γ·gs` immediately — and pulls the current parameters back.
//! Between a learner's pull and its next push, other learners keep
//! mutating the server, so the pushed gradient is *stale*; the
//! event-driven execution below realizes exactly that interleaving in
//! virtual-time order, with staleness driven by the jitter model's speed
//! variation. Accuracy is recorded each time learner 0 completes a shard
//! pass — roughly once per collective epoch.

use std::collections::VecDeque;

use sasgd_data::{make_shards, Dataset};
use sasgd_nn::Model;
use sasgd_simnet::{EventQueue, VirtualTime};

use crate::history::{History, StalenessStats};
use crate::trainer::{EvalSets, Learner, TrainConfig};

/// A per-learner infinite minibatch stream over that learner's data shard
/// (reshuffled every pass).
pub(crate) struct BatchStream {
    pending: VecDeque<Vec<usize>>,
    indices: Vec<usize>,
    batch: usize,
    /// Completed shard passes.
    pub(crate) passes: u64,
}

impl BatchStream {
    pub(crate) fn new(indices: Vec<usize>, batch: usize) -> Self {
        assert!(!indices.is_empty(), "learner shard is empty (p > n?)");
        BatchStream {
            pending: VecDeque::new(),
            indices,
            batch,
            passes: 0,
        }
    }

    /// Next minibatch of indices, reshuffling when a pass completes.
    pub(crate) fn next(&mut self, rng: &mut sasgd_tensor::SeedRng) -> Vec<usize> {
        if self.pending.is_empty() {
            let mut order = self.indices.clone();
            rng.shuffle(&mut order);
            self.pending = order.chunks(self.batch).map(<[usize]>::to_vec).collect();
            self.passes += 1;
        }
        self.pending.pop_front().expect("refilled stream")
    }

    /// Passes completed (a pass counts once its last batch is consumed).
    pub(crate) fn completed_passes(&self) -> u64 {
        if self.pending.is_empty() {
            self.passes
        } else {
            self.passes.saturating_sub(1)
        }
    }
}

struct Block {
    learner: usize,
    start: f64,
}

/// Run Downpour.
pub(crate) fn run(
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
    t: usize,
) -> History {
    assert!(p >= 1 && t >= 1);
    let mut learners: Vec<Learner> = (0..p).map(|id| Learner::new(id, factory(), cfg)).collect();
    let m = learners[0].model.param_len();
    let macs = learners[0].model.macs_per_sample();
    let mut ps: Vec<f32> = learners[0].model.param_vector();
    for l in &mut learners {
        l.model.write_params(&ps);
    }
    let evals = EvalSets::prepare(train_set, test_set, cfg.eval_cap);
    let n = train_set.len();
    let step_s = cfg.cost.minibatch_compute(macs, cfg.batch_size, p);
    let comm_round = cfg.cost.ps_roundtrip(m, p).seconds;
    let target_samples = (cfg.epochs as u64) * (n as u64);

    let mut streams: Vec<BatchStream> = make_shards(train_set, p, cfg.shard_strategy)
        .into_iter()
        .map(|s| BatchStream::new(s.indices().to_vec(), cfg.batch_size))
        .collect();
    let mut queue: EventQueue<Block> = EventQueue::new();
    for (id, l) in learners.iter_mut().enumerate() {
        let dur = block_duration(l, t, step_s, cfg);
        queue.push(
            VirtualTime(dur),
            Block {
                learner: id,
                start: 0.0,
            },
        );
    }

    let mut history = History::new(format!("Downpour(p={p},T={t})"), p, t);
    let mut samples = 0u64;
    let mut recorded_passes = 0u64;
    // Staleness bookkeeping: how many server updates landed between a
    // learner's pull and its next push.
    let mut server_version = 0u64;
    let mut pulled_version = vec![0u64; p];
    let mut staleness_obs: Vec<u64> = Vec::new();

    while let Some((tv, block)) = queue.pop() {
        let id = block.learner;
        // Execute the block's math: T minibatches of local SGD against the
        // parameters pulled at the previous sync.
        let gamma_now = cfg.gamma_at(samples as f64 / n as f64);
        for _ in 0..t {
            let idx = {
                let l = &mut learners[id];
                streams[id].next(&mut l.rng)
            };
            samples += idx.len() as u64;
            learners[id].local_step(train_set, &idx, gamma_now, 0.0, 1.0);
        }
        {
            let l = &mut learners[id];
            l.compute_s += tv.seconds() - block.start;
            l.clock = tv.seconds();
            // Push: the server applies the accumulated gradient at once.
            staleness_obs.push(server_version - pulled_version[id]);
            for (x, &g) in ps.iter_mut().zip(&l.gs) {
                *x -= gamma_now * g;
            }
            server_version += 1;
            l.gs.iter_mut().for_each(|g| *g = 0.0);
            // Pull: fresh (possibly already-stale-tomorrow) parameters.
            l.charge_comm(comm_round);
            l.model.write_params(&ps);
            pulled_version[id] = server_version;
        }
        // Record accuracy when learner 0 finishes a pass over its shard.
        if id == 0 && streams[0].completed_passes() > recorded_passes {
            recorded_passes = streams[0].completed_passes();
            let epoch = samples as f64 / n as f64;
            let (comp, comm) = (learners[0].compute_s, learners[0].comm_s);
            let rec = evals.record(&mut learners[0].model, epoch, comp, comm, samples);
            history.records.push(rec);
        }
        if samples < target_samples {
            let start = learners[id].clock;
            let dur = block_duration(&mut learners[id], t, step_s, cfg);
            queue.push(VirtualTime(start + dur), Block { learner: id, start });
        }
    }
    // Guarantee a final record even if learner 0 did not end on a pass
    // boundary.
    if history.records.is_empty() || history.records.last().expect("nonempty").samples < samples {
        let epoch = samples as f64 / n as f64;
        let (comp, comm) = (learners[0].compute_s, learners[0].comm_s);
        let rec = evals.record(&mut learners[0].model, epoch, comp, comm, samples);
        history.records.push(rec);
    }
    history.staleness = StalenessStats::from_observations(&staleness_obs);
    history.final_params = Some(learners[0].model.param_vector());
    history
}

/// Duration of the next `t`-minibatch compute block (jitter drawn now so
/// completion order is known to the event queue up front).
pub(crate) fn block_duration(l: &mut Learner, t: usize, step_s: f64, cfg: &TrainConfig) -> f64 {
    let mut dur = 0.0;
    for _ in 0..t {
        dur += step_s * l.speed * l.draw_jitter(&cfg.jitter);
    }
    dur
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_data::cifar_like::{generate, CifarLikeConfig};
    use sasgd_nn::models;
    use sasgd_simnet::JitterModel;
    use sasgd_tensor::SeedRng;

    #[test]
    fn batch_stream_passes_count_on_consumption() {
        let mut rng = SeedRng::new(1);
        let mut s = BatchStream::new((0..10).collect(), 4);
        assert_eq!(s.completed_passes(), 0);
        let mut seen = Vec::new();
        for _ in 0..3 {
            seen.extend(s.next(&mut rng)); // 4 + 4 + 2 consumes one pass
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(s.completed_passes(), 1);
        let _ = s.next(&mut rng);
        assert_eq!(s.completed_passes(), 1, "mid-pass");
    }

    #[test]
    fn single_learner_downpour_learns() {
        let (train, test) = generate(&CifarLikeConfig::tiny(80, 40, 3));
        let mut cfg = TrainConfig::new(6, 8, 0.05, 42);
        cfg.jitter = JitterModel::none();
        let mut factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = run(&mut factory, &train, &test, &cfg, 1, 1);
        assert!(h.final_test_acc() > 0.5, "acc {}", h.final_test_acc());
        assert!(
            h.records.last().expect("r").comm_seconds > 0.0,
            "PS traffic even at p=1"
        );
    }

    #[test]
    fn records_land_once_per_collective_epoch() {
        // Learner 0 records whenever it finishes a pass over its shard
        // (n/p samples); with all p learners running that is ~n collective
        // samples between records, i.e. one epoch.
        let (train, test) = generate(&CifarLikeConfig::tiny(64, 16, 2));
        let mut cfg = TrainConfig::new(8, 8, 0.02, 42);
        cfg.jitter = JitterModel::none();
        let mut factory = || models::tiny_cnn(2, &mut SeedRng::new(3));
        let h = run(&mut factory, &train, &test, &cfg, 4, 2);
        assert!(h.records.len() >= 2);
        let gap = h.records[1].epoch - h.records[0].epoch;
        assert!(
            (gap - 1.0).abs() < 0.5,
            "records ~1 collective epoch apart, gap {gap}"
        );
    }

    #[test]
    fn total_samples_respect_epoch_budget() {
        let (train, test) = generate(&CifarLikeConfig::tiny(40, 10, 2));
        let mut cfg = TrainConfig::new(3, 8, 0.02, 1);
        cfg.jitter = JitterModel::none();
        let mut factory = || models::tiny_cnn(2, &mut SeedRng::new(3));
        let h = run(&mut factory, &train, &test, &cfg, 2, 1);
        let total = h.records.last().expect("r").samples;
        // Budget 3 × 40 = 120, with at most one block (8 samples × 2
        // learners) of overshoot.
        assert!((120..=120 + 32).contains(&total), "samples {total}");
    }
}

//! The `sparsity` repro target: adaptive sparsification on the real wire,
//! recorded as `BENCH_sparsity.json`.
//!
//! One sweep per learner count (p = 4 and p = 8), all on the threaded
//! backend so every byte is measured by the transport's traffic counters
//! rather than modeled: dense SASGD (the baseline every row is judged
//! against), fixed-k top-k, the norm-adaptive k schedule, layer-wise
//! budget allocation, and the composed scheme (fixed k + 8-bit leaf
//! quantization + union-bounded merges). Each sparse row also reports the
//! mean nonzeros per message at every tree level — the union-growth curve
//! the composed scheme exists to flatten. The composed point is run twice
//! and compared bitwise (`deterministic_replay`), and once on the
//! simulated backend (`cross_backend_bitwise`), so both flags are
//! measured, not asserted.

use sasgd_core::algorithms::GammaP;
use sasgd_core::report::ascii_table;
use sasgd_core::{Algorithm, Backend, Compression, Executor, History, KSchedule, TrainConfig};
use sasgd_simnet::JitterModel;

use crate::figures::Artifact;
use crate::scale::{cifar_workload, Scale};

/// Aggregation interval shared by every row. Per-step aggregation (the
/// classic gradient-compression setting): the error-feedback residual
/// turns over in ~1/RATIO rounds, so the sweep needs enough sync rounds
/// for the carried mass to actually land.
const T: usize = 1;
/// Keep-ratio the sparse schemes start from (the adaptive schedule may
/// drift inside its clamp band).
const RATIO: f64 = 0.01;
/// Accuracy tolerance against the dense baseline.
const ACC_TOL: f32 = 0.02;
/// Wire-reduction factor the best adaptive point must reach at p = 8
/// while staying inside `ACC_TOL`.
const WIRE_GATE: f64 = 10.0;

/// The sweep at one learner count. The first entry is the dense baseline.
fn schemes() -> Vec<(&'static str, Option<Compression>)> {
    let sparse = |k: KSchedule, q8: bool, union_bound: bool| {
        Some(Compression::Sparse { k, q8, union_bound })
    };
    vec![
        ("dense", None),
        ("fixed-k", sparse(KSchedule::fixed(RATIO), false, false)),
        (
            "norm-adaptive",
            sparse(KSchedule::norm_adaptive(RATIO), false, false),
        ),
        (
            "layer-wise",
            sparse(KSchedule::layer_wise(RATIO), false, false),
        ),
        (
            "composed",
            sparse(KSchedule::norm_adaptive(RATIO), true, true),
        ),
    ]
}

/// One sweep point's outcome.
pub struct SparsityRow {
    /// Scheme name ("dense", "fixed-k", ...).
    pub scheme: &'static str,
    /// Algorithm label.
    pub label: String,
    /// Learner count.
    pub p: usize,
    /// Final test accuracy.
    pub test_acc: f32,
    /// Dense baseline accuracy minus this row's (positive = worse).
    pub acc_delta: f32,
    /// Measured wire traffic in bytes (4 per `f32` element).
    pub wire_bytes: u64,
    /// Dense baseline bytes over this row's bytes.
    pub wire_ratio: f64,
    /// Messages sent.
    pub messages: u64,
    /// Mean `k_eff / m` over the recorded sparsity series (1 for dense).
    pub mean_k_ratio: f64,
    /// Mean nonzeros per message at each tree level (reduce levels in
    /// bit order, then the broadcast level; empty for dense).
    pub nnz_per_level: Vec<f64>,
}

fn build_row(
    scheme: &'static str,
    algo: &Algorithm,
    h: &History,
    m: usize,
    dense: Option<(f32, u64)>,
) -> SparsityRow {
    let wire = h.wire.as_ref().expect("threaded runs count traffic");
    let wire_bytes = wire.elements * 4;
    let mean_k_ratio = if h.sparsity_series.is_empty() {
        1.0
    } else {
        let total: u64 = h.sparsity_series.iter().map(|s| s.k_eff as u64).sum();
        total as f64 / (h.sparsity_series.len() as f64 * m as f64)
    };
    let nnz_per_level = h
        .sparse_levels
        .levels
        .iter()
        .map(|l| {
            if l.messages == 0 {
                0.0
            } else {
                l.nnz as f64 / l.messages as f64
            }
        })
        .collect();
    let (dense_acc, dense_bytes) = dense.unwrap_or((h.final_test_acc(), wire_bytes));
    SparsityRow {
        scheme,
        label: algo.label(),
        p: algo.learners(),
        test_acc: h.final_test_acc(),
        acc_delta: dense_acc - h.final_test_acc(),
        wire_bytes,
        wire_ratio: dense_bytes as f64 / wire_bytes as f64,
        messages: wire.messages,
        mean_k_ratio,
        nnz_per_level,
    }
}

/// Hand-rolled JSON (the workspace builds offline, with no serde).
pub fn to_json(
    rows: &[SparsityRow],
    deterministic_replay: bool,
    cross_backend_bitwise: bool,
    wire_bytes_ratio: f64,
    wire_gate_ok: bool,
) -> String {
    let mut s = format!(
        "{{\n  \"t\": {T},\n  \"ratio\": {RATIO},\n  \"acc_tolerance\": {ACC_TOL},\n  \
         \"deterministic_replay\": {deterministic_replay},\n  \
         \"cross_backend_bitwise\": {cross_backend_bitwise},\n  \
         \"wire_bytes_ratio\": {wire_bytes_ratio:.2},\n  \
         \"wire_gate_ok\": {wire_gate_ok},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let levels: Vec<String> = r.nnz_per_level.iter().map(|v| format!("{v:.1}")).collect();
        s.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"label\": \"{}\", \"p\": {}, \
             \"test_acc\": {:.4}, \"acc_delta\": {:.4}, \"wire_bytes\": {}, \
             \"wire_ratio\": {:.2}, \"messages\": {}, \"mean_k_ratio\": {:.4}, \
             \"nnz_per_level\": [{}]}}{}\n",
            r.scheme,
            r.label,
            r.p,
            r.test_acc,
            r.acc_delta,
            r.wire_bytes,
            r.wire_ratio,
            r.messages,
            r.mean_k_ratio,
            levels.join(", "),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The best adaptive point at p = 8: the largest wire reduction among the
/// adaptive/composed schemes that stay inside the accuracy tolerance.
fn best_adaptive_ratio(rows: &[SparsityRow]) -> f64 {
    rows.iter()
        .filter(|r| {
            r.p == 8
                && matches!(r.scheme, "norm-adaptive" | "layer-wise" | "composed")
                && r.acc_delta <= ACC_TOL
        })
        .map(|r| r.wire_ratio)
        .fold(0.0, f64::max)
}

/// The `sparsity` repro target: the k-schedule sweep at p = 4 and p = 8,
/// emitted as a report plus `BENCH_sparsity.json`.
pub fn sparsity(scale: Scale, epochs: Option<usize>) -> Artifact {
    let w = cifar_workload(scale, epochs.or(Some(32)));
    let mut cfg = TrainConfig::new(w.epochs, w.batch, w.gamma_hi, 0x51AB);
    // Wire accounting wants wall-clock-independent runs; jitter shapes
    // virtual time only, but keep the config noiseless anyway.
    cfg.jitter = JitterModel::none();
    let m = (w.factory)().param_vector().len();
    let threaded = Executor::new(Backend::Threaded);

    let mut rows = Vec::new();
    for p in [4usize, 8] {
        let mut dense: Option<(f32, u64)> = None;
        for (scheme, compression) in schemes() {
            let algo = Algorithm::Sasgd {
                p,
                t: T,
                gamma_p: GammaP::OverP,
                compression,
            };
            let h = threaded.run(&*w.factory, &w.train, &w.test, &algo, &cfg);
            let row = build_row(scheme, &algo, &h, m, dense);
            if dense.is_none() {
                dense = Some((row.test_acc, row.wire_bytes));
            }
            rows.push(row);
        }
    }

    // Replay the composed point at p = 8 on both backends: two threaded
    // runs must be bitwise identical, and the simulated in-memory mirror
    // must match them.
    let replay_algo = Algorithm::Sasgd {
        p: 8,
        t: T,
        gamma_p: GammaP::OverP,
        compression: Some(Compression::Sparse {
            k: KSchedule::norm_adaptive(RATIO),
            q8: true,
            union_bound: true,
        }),
    };
    let first = threaded.run(&*w.factory, &w.train, &w.test, &replay_algo, &cfg);
    let second = threaded.run(&*w.factory, &w.train, &w.test, &replay_algo, &cfg);
    let deterministic_replay =
        first.final_params.is_some() && first.final_params == second.final_params;
    let sim =
        Executor::new(Backend::Simulated).run(&*w.factory, &w.train, &w.test, &replay_algo, &cfg);
    let cross_backend_bitwise = first.final_params == sim.final_params;

    let wire_bytes_ratio = best_adaptive_ratio(&rows);
    let wire_gate_ok = wire_bytes_ratio >= WIRE_GATE;

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let levels: Vec<String> = r.nnz_per_level.iter().map(|v| format!("{v:.0}")).collect();
            vec![
                format!("{} p={}", r.scheme, r.p),
                format!("{:.4}", r.test_acc),
                format!("{:+.4}", -r.acc_delta),
                r.wire_bytes.to_string(),
                format!("{:.1}x", r.wire_ratio),
                format!("{:.2}%", r.mean_k_ratio * 100.0),
                if levels.is_empty() {
                    "-".into()
                } else {
                    levels.join(" / ")
                },
            ]
        })
        .collect();
    let table = ascii_table(
        &[
            "scheme",
            "test acc",
            "Δacc",
            "wire bytes",
            "vs dense",
            "mean k",
            "nnz/msg by tree level",
        ],
        &table_rows,
    );
    let report = format!(
        "Adaptive sparsification — threaded backend, T = {T}, base keep \
         ratio {RATIO}, {} epochs, m = {m}\n\n{table}\n\
         \"nnz/msg by tree level\" lists the reduce levels in bit order,\n\
         then the result broadcast: unbounded sparse merges grow toward\n\
         the union of their subtree, the union-bounded composed scheme\n\
         stays flat at the k budget. Best adaptive point at p = 8 inside\n\
         ±{ACC_TOL} of dense: {wire_bytes_ratio:.1}x fewer measured wire \
         bytes (gate ≥ {WIRE_GATE}x: {wire_gate_ok}).\n\
         Composed p = 8 replay is bitwise deterministic: \
         {deterministic_replay}; simulated backend matches the threaded \
         wire bitwise: {cross_backend_bitwise}.\n",
        w.epochs
    );
    Artifact {
        name: "sparsity".into(),
        report,
        csvs: vec![(
            "BENCH_sparsity.json".into(),
            to_json(
                &rows,
                deterministic_replay,
                cross_backend_bitwise,
                wire_bytes_ratio,
                wire_gate_ok,
            ),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(scheme: &'static str, p: usize, acc_delta: f32, wire_ratio: f64) -> SparsityRow {
        SparsityRow {
            scheme,
            label: format!("{scheme}(p={p})"),
            p,
            test_acc: 0.7 - acc_delta,
            acc_delta,
            wire_bytes: 1_000,
            wire_ratio,
            messages: 10,
            mean_k_ratio: 0.02,
            nnz_per_level: vec![40.0, 41.0, 39.5, 40.2],
        }
    }

    #[test]
    fn json_shape_and_flags() {
        let rows = vec![row("dense", 8, 0.0, 1.0), row("composed", 8, 0.004, 18.0)];
        let j = to_json(&rows, true, true, 18.0, true);
        assert!(j.contains("\"deterministic_replay\": true"));
        assert!(j.contains("\"cross_backend_bitwise\": true"));
        assert!(j.contains("\"wire_bytes_ratio\": 18.00"));
        assert!(j.contains("\"wire_gate_ok\": true"));
        assert!(j.contains("\"nnz_per_level\": [40.0, 41.0, 39.5, 40.2]"));
    }

    #[test]
    fn best_adaptive_requires_tolerance_and_family() {
        let rows = vec![
            row("dense", 8, 0.0, 1.0),
            row("fixed-k", 8, 0.001, 50.0),     // not adaptive
            row("norm-adaptive", 8, 0.5, 40.0), // too lossy
            row("composed", 8, 0.01, 18.0),     // counts
            row("composed", 4, 0.0, 30.0),      // wrong p
        ];
        assert_eq!(best_adaptive_ratio(&rows), 18.0);
    }
}

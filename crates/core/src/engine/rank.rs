//! The per-rank SASGD loop, generic over the comm substrate.
//!
//! [`run_sasgd_rank`] and [`run_sasgd_ft_rank`] are the exact learner
//! loops the threaded backend spawns one thread per rank for — factored
//! out over [`Transport`] so the *same code* drives a rank whether its
//! peers are threads in this process (in-proc crossbeam endpoints) or
//! other OS processes (socket endpoints handed out by the launcher). The
//! operation order is frozen: local steps, tree allreduce every `T`
//! minibatches, `x -= γp·Σg`, rank 0 evaluating at epoch ends — so a
//! multi-process run produces bitwise the same `final_params` as an
//! in-process one (the launcher's integration test pins this).
//!
//! Wire failures are typed, never panics: a plain-SASGD rank returns
//! [`EngineError::WireFailure`]; a fault-tolerant rank that *can* degrade
//! (evicted, or orphaned while rank 0 still coordinates) retires into
//! [`History::retirements`] instead.

use std::time::{Duration, Instant};

use sasgd_comm::collectives::{allreduce_tree, broadcast};
use sasgd_comm::fault::FaultPlan;
use sasgd_comm::ft::{ft_allreduce, FtError, Membership};
use sasgd_comm::sparse::{sparse_allreduce_tree, SparseVec};
use sasgd_comm::transport::Transport;
use sasgd_comm::world::CommError;
use sasgd_data::{Dataset, Shard};
use sasgd_nn::Model;

use super::EngineError;
use crate::algorithms::GammaP;
use crate::compress::Compression;
use crate::history::{History, MembershipEvent, RetirementEvent};
use crate::trainer::{EvalSets, Learner, TrainConfig};

/// Everything a single SASGD rank needs besides its endpoint, model and
/// data shard. One spec is built per rank (it owns its label); every
/// field must be identical across ranks for the collectives to line up.
pub struct SasgdRankSpec<'a> {
    /// Full training set (rank 0 evaluates against it).
    pub train_set: &'a Dataset,
    /// Test set (rank 0 only).
    pub test_set: &'a Dataset,
    /// Shared training configuration.
    pub cfg: &'a TrainConfig,
    /// World size.
    pub p: usize,
    /// Aggregation interval `T`.
    pub t: usize,
    /// Global-rate policy.
    pub gamma_p: GammaP,
    /// Optional gradient compression.
    pub compression: Option<Compression>,
    /// History label.
    pub label: String,
    /// Lockstep steps per epoch — `min` over all shards, computed once by
    /// the caller so every rank truncates identically.
    pub steps_per_epoch: usize,
}

fn wire_failure(rank: usize, round: u64, e: CommError) -> EngineError {
    EngineError::WireFailure {
        rank,
        round,
        detail: e.to_string(),
    }
}

/// One rank of plain (optionally compressed) SASGD over any transport.
/// Returns this rank's [`History`]; only rank 0's carries epoch records.
pub fn run_sasgd_rank<T: Transport>(
    comm: &mut T,
    model: Model,
    shard: &Shard,
    spec: &SasgdRankSpec<'_>,
) -> Result<History, EngineError> {
    let rank = comm.rank();
    let cfg = spec.cfg;
    let mut learner = Learner::new(rank, model, cfg);
    let mut x = learner.model.param_vector();
    let m = x.len();
    // Broadcast learner 0's parameters (Algorithm 1).
    broadcast(comm, 0, &mut x).map_err(|e| wire_failure(rank, 0, e))?;
    learner.model.write_params(&x);
    let mut residual = vec![0.0f32; if spec.compression.is_some() { m } else { 0 }];
    let evals = if rank == 0 {
        Some(EvalSets::prepare(
            spec.train_set,
            spec.test_set,
            cfg.eval_cap,
        ))
    } else {
        None
    };
    let mut history = History::new(spec.label.clone(), spec.p, spec.t);
    let mut compute_s = 0.0f64;
    let mut comm_s = 0.0f64;
    let mut samples = 0u64;
    let mut since_agg = 0usize;
    let mut round = 0u64;
    for epoch in 1..=cfg.epochs {
        let batches: Vec<Vec<usize>> = shard
            .epoch_iter(cfg.batch_size, &mut learner.rng)
            .take(spec.steps_per_epoch)
            .collect();
        for (step, idx) in batches.iter().enumerate() {
            // Same per-step schedule formula as the simulated backend, so
            // trajectories stay bitwise equal.
            let epoch_f = (epoch - 1) as f64 + step as f64 / spec.steps_per_epoch as f64;
            let gamma_now = cfg.gamma_at(epoch_f);
            samples += idx.len() as u64;
            let t0 = Instant::now();
            learner.local_step(spec.train_set, idx, gamma_now, 0.0, 1.0);
            compute_s += t0.elapsed().as_secs_f64();
            since_agg += 1;
            if since_agg == spec.t {
                let gp = spec.gamma_p.resolve(gamma_now, spec.p);
                let t1 = Instant::now();
                round += 1;
                let total: Vec<f32> = match spec.compression {
                    None => {
                        allreduce_tree(comm, &mut learner.gs)
                            .map_err(|e| wire_failure(rank, round, e))?;
                        learner.gs.clone()
                    }
                    Some(comp) => {
                        // Error feedback: compress gs + carried residual,
                        // keep what was dropped.
                        let input: Vec<f32> = learner
                            .gs
                            .iter()
                            .zip(&residual)
                            .map(|(a, b)| a + b)
                            .collect();
                        let c = comp.compress(&input);
                        residual = c.residual;
                        match comp {
                            Compression::TopK { .. } => {
                                let mut sv = SparseVec::from_dense(&c.dense);
                                sparse_allreduce_tree(comm, &mut sv)
                                    .map_err(|e| wire_failure(rank, round, e))?;
                                sv.to_dense()
                            }
                            Compression::Uniform8Bit => {
                                let mut buf = c.dense;
                                allreduce_tree(comm, &mut buf)
                                    .map_err(|e| wire_failure(rank, round, e))?;
                                buf
                            }
                        }
                    }
                };
                for (xi, &g) in x.iter_mut().zip(&total) {
                    *xi -= gp * g;
                }
                learner.model.write_params(&x);
                learner.gs.iter_mut().for_each(|g| *g = 0.0);
                comm_s += t1.elapsed().as_secs_f64();
                since_agg = 0;
            }
        }
        if let Some(ev) = &evals {
            let rec = ev.record(
                &mut learner.model,
                epoch as f64,
                compute_s,
                comm_s,
                samples * spec.p as u64,
            );
            history.records.push(rec);
        }
    }
    history.final_params = Some(learner.model.param_vector());
    Ok(history)
}

/// One rank of fault-tolerant SASGD over any transport. Graceful paths:
///
/// * **eviction** — survivors confirmed this rank lost (e.g. it stalled
///   past the deadline): retire quietly, recording a
///   [`RetirementEvent`], rather than diverge;
/// * **any other wire failure on a non-coordinator** — the rank cannot
///   rejoin, but the run does not need it: retire the same way (this was
///   a panic before the transport refactor);
/// * **a wire failure on the recovery coordinator (rank 0)** — nothing
///   can degrade around the coordinator, so this is the one path that
///   returns [`EngineError::WireFailure`].
pub fn run_sasgd_ft_rank<T: Transport>(
    comm: &mut T,
    model: Model,
    shard: &Shard,
    spec: &SasgdRankSpec<'_>,
    plan: &FaultPlan,
    deadline: Duration,
) -> Result<History, EngineError> {
    let rank = comm.rank();
    let cfg = spec.cfg;
    let crash_at = plan.crash_step(rank);
    let mut membership = Membership::new(spec.p);
    let mut learner = Learner::new(rank, model, cfg);
    let mut x = learner.model.param_vector();
    broadcast(comm, 0, &mut x).map_err(|e| wire_failure(rank, 0, e))?;
    learner.model.write_params(&x);
    let evals = if rank == 0 {
        Some(EvalSets::prepare(
            spec.train_set,
            spec.test_set,
            cfg.eval_cap,
        ))
    } else {
        None
    };
    let mut history = History::new(spec.label.clone(), spec.p, spec.t);
    let mut compute_s = 0.0f64;
    let mut comm_s = 0.0f64;
    let mut samples = 0u64;
    let mut since_agg = 0usize;
    let mut gstep = 0u64;
    let mut round = 0u64;
    'run: for epoch in 1..=cfg.epochs {
        let batches: Vec<Vec<usize>> = shard
            .epoch_iter(cfg.batch_size, &mut learner.rng)
            .take(spec.steps_per_epoch)
            .collect();
        for (step, idx) in batches.iter().enumerate() {
            gstep += 1;
            // Faults fire only at step boundaries (never inside a
            // collective), so degraded runs replay bitwise.
            if crash_at.is_some_and(|s| gstep >= s) {
                // Crash: stop participating. Dropping the comm endpoint on
                // return is what survivors detect.
                break 'run;
            }
            if let Some(stall) = plan.stall_at(rank, gstep) {
                std::thread::sleep(stall);
            }
            let epoch_f = (epoch - 1) as f64 + step as f64 / spec.steps_per_epoch as f64;
            let gamma_now = cfg.gamma_at(epoch_f);
            samples += idx.len() as u64;
            let t0 = Instant::now();
            learner.local_step(spec.train_set, idx, gamma_now, 0.0, 1.0);
            compute_s += t0.elapsed().as_secs_f64();
            since_agg += 1;
            if since_agg == spec.t {
                let t1 = Instant::now();
                round += 1;
                let outcome = match ft_allreduce(comm, &mut membership, &mut learner.gs, deadline) {
                    Ok(o) => o,
                    Err(e @ FtError::Evicted { .. }) => {
                        // Survivors confirmed this rank lost (e.g. it
                        // stalled past the deadline); retire quietly
                        // rather than diverge.
                        history.retirements.push(RetirementEvent {
                            rank,
                            round,
                            reason: e.to_string(),
                        });
                        break 'run;
                    }
                    Err(e) if rank != 0 => {
                        // The wire failed under this rank but the run
                        // does not need it: degrade exactly like an
                        // eviction instead of panicking the world.
                        history.retirements.push(RetirementEvent {
                            rank,
                            round,
                            reason: e.to_string(),
                        });
                        break 'run;
                    }
                    Err(e) => {
                        // Rank 0 is the recovery coordinator; nothing
                        // can degrade around it.
                        return Err(wire_failure_ft(rank, round, &e));
                    }
                };
                // Graceful degradation: γp rescales to the survivor count
                // (= p on a clean round, so the fault-free trajectory
                // matches run_sasgd_rank).
                let gp = spec.gamma_p.resolve(gamma_now, membership.len());
                for (xi, &g) in x.iter_mut().zip(&learner.gs) {
                    *xi -= gp * g;
                }
                learner.model.write_params(&x);
                learner.gs.iter_mut().for_each(|g| *g = 0.0);
                let elapsed = t1.elapsed().as_secs_f64();
                comm_s += elapsed;
                if rank == 0 && !outcome.lost.is_empty() {
                    history.membership.push(MembershipEvent {
                        round,
                        epoch: outcome.epoch,
                        lost: outcome.lost.clone(),
                        survivors: membership.len(),
                        gamma_p: gp,
                        recovery_seconds: elapsed,
                    });
                }
                since_agg = 0;
            }
        }
        if let Some(ev) = &evals {
            let rec = ev.record(
                &mut learner.model,
                epoch as f64,
                compute_s,
                comm_s,
                samples * membership.len() as u64,
            );
            history.records.push(rec);
        }
    }
    history.final_params = Some(learner.model.param_vector());
    Ok(history)
}

fn wire_failure_ft(rank: usize, round: u64, e: &FtError) -> EngineError {
    EngineError::WireFailure {
        rank,
        round,
        detail: e.to_string(),
    }
}

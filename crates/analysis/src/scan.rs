//! Workspace file discovery for the lint pass.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lints::{call_taint, call_taint_single, lint_file, scan_functions, Violation};

/// Directories scanned relative to the repo root.
const SCAN_ROOTS: &[&str] = &["src", "crates", "tests", "examples"];

/// Path components that end a walk: build output, vendored dependency
/// subsets (out of lint scope by definition), and the analyzer's own
/// fixture corpus (which *deliberately* violates every lint).
const SKIP_COMPONENTS: &[&str] = &["target", "vendor", "fixtures", ".git"];

/// The repository root, resolved from this crate's manifest directory.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis lives two levels under the repo root")
        .to_path_buf()
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if !SKIP_COMPONENTS.contains(&name) {
                walk(&p, files);
            }
        } else if name.ends_with(".rs") {
            files.push(p);
        }
    }
}

/// Result of linting the whole repository.
pub struct LintRun {
    /// Files scanned (repo-relative).
    pub files_scanned: usize,
    /// All findings, in path order.
    pub violations: Vec<Violation>,
}

/// The `call-taint` crate key for a repo-relative path: library files
/// grouped per crate (`crates/<name>/src/`), plus the top-level `src/`
/// tree. Tests, examples, and bench binaries are outside the pass — their
/// nondeterminism cannot reach library numerics at link time.
fn taint_crate_key(rel: &str) -> Option<String> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let name = rest.split('/').next()?;
        if rest.strip_prefix(name)?.starts_with("/src/") {
            return Some(format!("crates/{name}"));
        }
        return None;
    }
    rel.starts_with("src/").then(|| "src".to_string())
}

/// Lint every workspace `.rs` file under `root`: the per-file lints, then
/// the crate-grouped `call-taint` pass over each crate's `src/` tree.
pub fn lint_repo(root: &Path) -> LintRun {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        walk(&root.join(scan), &mut files);
    }
    let mut violations = Vec::new();
    let mut scanned = 0usize;
    let mut crates: BTreeMap<String, Vec<crate::lints::FileFns>> = BTreeMap::new();
    for f in &files {
        let Ok(src) = fs::read_to_string(f) else {
            continue;
        };
        scanned += 1;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(lint_file(&rel, &src));
        if let Some(key) = taint_crate_key(&rel) {
            crates
                .entry(key)
                .or_default()
                .push(scan_functions(&rel, &src));
        }
    }
    for group in crates.values() {
        violations.extend(call_taint(group));
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    LintRun {
        files_scanned: scanned,
        violations,
    }
}

/// Lint the bad-fixture corpus (each file declares its virtual repo path on
/// its first line as `// virtual-path: crates/...`). Returns the number of
/// violations found — the analyzer self-test expects this to be large.
pub fn lint_fixture_corpus(dir: &Path) -> (usize, Vec<Violation>) {
    let mut files = Vec::new();
    walk(dir, &mut files);
    let mut violations = Vec::new();
    let mut count = 0usize;
    for f in &files {
        let Ok(src) = fs::read_to_string(f) else {
            continue;
        };
        count += 1;
        let virtual_path = src
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("// virtual-path:"))
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|| f.to_string_lossy().into_owned());
        violations.extend(lint_file(&virtual_path, &src));
        // Fixtures are degenerate one-file crates for `call-taint`.
        violations.extend(call_taint_single(&virtual_path, &src));
    }
    (count, violations)
}

/// The analyzer's fixture directory (`crates/analysis/fixtures`).
pub fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

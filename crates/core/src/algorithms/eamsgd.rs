//! EAMSGD — elastic-averaging asynchronous SGD (Zhang, Choromanska, LeCun,
//! NIPS 2015), the paper's stronger baseline.
//!
//! Each learner runs *momentum* SGD on its own replica; every `τ` (= `T`)
//! minibatches it exchanges an elastic force with a center variable `x̃`
//! kept on the parameter server:
//!
//! ```text
//! diff = α (xᵢ − x̃);   xᵢ ← xᵢ − diff;   x̃ ← x̃ + diff
//! ```
//!
//! The default moving rate is `α = β/p` with `β = 0.9`, as recommended in
//! the EAMSGD paper. Communication cost per round equals a parameter-server
//! round trip (pull `x̃`, push `diff`). As in the EASGD/EAMSGD setting (and
//! [`super::downpour`]), the training data is partitioned across learners:
//! each replica streams minibatches from its own shard. Asynchrony is
//! realized by the engine's event-driven loop: completion events ordered
//! by virtual time.

use sasgd_data::Dataset;
use sasgd_nn::Model;

use crate::engine::{simulated, AggregationStrategy, Cadence, CommScope};
use crate::history::History;
use crate::trainer::{Learner, TrainConfig};

/// Asynchronous momentum-SGD replicas elastically coupled to a center
/// variable.
pub(crate) struct EamsgdStrategy {
    p: usize,
    t: usize,
    alpha: f32,
    momentum: f32,
    /// Scale the elastic moving rate by 1/(1+τ) using measured staleness.
    staleness_gamma: bool,
    /// Staleness observed for the learner about to exchange.
    last_tau: u64,
    /// The center variable `x̃` on the parameter server.
    center: Vec<f32>,
    /// Per-learner momentum buffers.
    velocities: Vec<Vec<f32>>,
    /// Lockstep-only: modeled PS round-trip seconds, set in `setup`.
    round_s: f64,
}

impl EamsgdStrategy {
    pub(crate) fn new(
        p: usize,
        t: usize,
        moving_rate: Option<f32>,
        momentum: f32,
        staleness_gamma: bool,
    ) -> Self {
        assert!(p >= 1 && t >= 1);
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        let alpha = moving_rate.unwrap_or(0.9 / p as f32);
        assert!(alpha > 0.0 && alpha <= 1.0, "moving rate out of range");
        EamsgdStrategy {
            p,
            t,
            alpha,
            momentum,
            staleness_gamma,
            last_tau: 0,
            center: Vec::new(),
            velocities: Vec::new(),
            round_s: 0.0,
        }
    }

    /// The moving rate for the next exchange, staleness-scaled when
    /// enabled.
    fn alpha_eff(&self) -> f32 {
        if self.staleness_gamma {
            // lint:allow(float-cast): τ is a small update count.
            self.alpha / (1.0 + self.last_tau as f32)
        } else {
            self.alpha
        }
    }
}

impl AggregationStrategy for EamsgdStrategy {
    fn label(&self) -> String {
        if self.staleness_gamma {
            format!("EAMSGD-s\u{3b3}(p={},T={})", self.p, self.t)
        } else {
            format!("EAMSGD(p={},T={})", self.p, self.t)
        }
    }

    fn p(&self) -> usize {
        self.p
    }

    fn cadence(&self) -> Cadence {
        Cadence::EventDriven
    }

    fn comm_scope(&self) -> CommScope {
        CommScope::Individual
    }

    fn sync_interval(&self) -> usize {
        self.t
    }

    fn setup(&mut self, _factory: &mut dyn FnMut() -> Model, x0: &[f32], cfg: &TrainConfig) -> f64 {
        self.center = x0.to_vec();
        self.velocities = vec![vec![0.0; x0.len()]; self.p];
        self.round_s = cfg.cost.ps_roundtrip(x0.len(), self.p).seconds;
        0.0
    }

    fn observe_staleness(&mut self, _id: usize, tau: u64, gamma: f32) -> f32 {
        self.last_tau = tau;
        if self.staleness_gamma {
            // lint:allow(float-cast): τ is a small update count.
            gamma / (1.0 + tau as f32)
        } else {
            gamma
        }
    }

    fn sync(&mut self, learners: &mut [Learner], _gamma_now: f32) {
        // Lockstep EAMSGD: the same elastic exchange, executed as a
        // bulk-synchronous round in rank order (τ = 0 by construction).
        let t_max = learners.iter().map(|l| l.clock).fold(0.0, f64::max);
        self.last_tau = 0;
        for l in learners.iter_mut() {
            let wait = t_max - l.clock;
            self.exchange(l);
            l.charge_comm(wait + self.round_s);
        }
    }

    fn on_local_step(
        &mut self,
        l: &mut Learner,
        id: usize,
        data: &Dataset,
        idx: &[usize],
        gamma: f32,
    ) {
        // One momentum-SGD step on the local replica.
        let (g, _) = l.compute_gradient(data, idx);
        let mut params = l.model.param_vector();
        let v = &mut self.velocities[id];
        for ((vi, pi), &gi) in v.iter_mut().zip(params.iter_mut()).zip(&g) {
            *vi = self.momentum * *vi - gamma * gi;
            *pi += *vi;
        }
        l.model.write_params(&params);
    }

    fn event_sync(&mut self, l: &mut Learner, _id: usize, _gamma: f32) {
        self.exchange(l);
    }
}

impl EamsgdStrategy {
    /// Elastic exchange with the center at the current effective rate.
    fn exchange(&mut self, l: &mut Learner) {
        let alpha = self.alpha_eff();
        let mut params = l.model.param_vector();
        for (pi, ci) in params.iter_mut().zip(self.center.iter_mut()) {
            let diff = alpha * (*pi - *ci);
            *pi -= diff;
            *ci += diff;
        }
        l.model.write_params(&params);
    }
}

/// Run EAMSGD.
#[allow(clippy::too_many_arguments)] // mirrors the Eamsgd variant's fields
pub(crate) fn run(
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
    t: usize,
    moving_rate: Option<f32>,
    momentum: f32,
    staleness_gamma: bool,
) -> History {
    let mut s = EamsgdStrategy::new(p, t, moving_rate, momentum, staleness_gamma);
    simulated::run_auto(&mut s, factory, train_set, test_set, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_data::cifar_like::{generate, CifarLikeConfig};
    use sasgd_nn::models;
    use sasgd_simnet::JitterModel;
    use sasgd_tensor::SeedRng;

    #[test]
    fn learns_tiny_cifar_with_two_learners() {
        let (train, test) = generate(&CifarLikeConfig::tiny(80, 40, 3));
        let mut cfg = TrainConfig::new(8, 8, 0.02, 42);
        cfg.jitter = JitterModel::none();
        let mut factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = run(&mut factory, &train, &test, &cfg, 2, 2, None, 0.9, false);
        assert!(h.final_test_acc() > 0.5, "acc {}", h.final_test_acc());
    }

    #[test]
    fn center_tracks_learners() {
        // With α = 1 and p = 1 the center equals the learner after every
        // exchange, so EAMSGD degenerates to momentum SGD — and should
        // still learn.
        let (train, test) = generate(&CifarLikeConfig::tiny(60, 20, 2));
        let mut cfg = TrainConfig::new(6, 8, 0.02, 3);
        cfg.jitter = JitterModel::none();
        let mut factory = || models::tiny_cnn(2, &mut SeedRng::new(9));
        let h = run(
            &mut factory,
            &train,
            &test,
            &cfg,
            1,
            1,
            Some(1.0),
            0.9,
            false,
        );
        assert!(h.final_test_acc() > 0.5, "acc {}", h.final_test_acc());
    }

    #[test]
    #[should_panic(expected = "momentum must be")]
    fn bad_momentum_rejected() {
        let (train, test) = generate(&CifarLikeConfig::tiny(16, 8, 2));
        let cfg = TrainConfig::new(1, 8, 0.02, 3);
        let mut factory = || models::tiny_cnn(2, &mut SeedRng::new(9));
        run(&mut factory, &train, &test, &cfg, 1, 1, None, 1.5, false);
    }
}

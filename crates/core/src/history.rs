//! Experiment records: what every figure in the paper plots.

use sasgd_comm::sparse::SparseLevelProfile;

/// One accuracy/timing sample, taken when a learner completes a pass.
///
/// For synchronous algorithms records land on every collective epoch; for
/// asynchronous ones (Downpour, EAMSGD) a record lands every `p` collective
/// epochs — exactly the `1/p` plotting density the paper describes in §IV-C.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// Collective epochs completed (total samples processed / dataset size).
    pub epoch: f64,
    /// Mean training loss measured by a dedicated evaluation pass.
    pub train_loss: f32,
    /// Training accuracy in `[0, 1]`.
    pub train_acc: f32,
    /// Test loss.
    pub test_loss: f32,
    /// Test accuracy in `[0, 1]`.
    pub test_acc: f32,
    /// Virtual seconds of minibatch computation on the observed learner.
    pub compute_seconds: f64,
    /// Virtual seconds of communication on the observed learner.
    pub comm_seconds: f64,
    /// Total samples processed system-wide so far.
    pub samples: u64,
    /// Norm of a large-batch gradient estimate at this point — the
    /// empirical counterpart of the theory's average gradient norm.
    pub grad_norm: f32,
}

/// A full training trajectory plus run metadata.
#[derive(Clone, Debug)]
pub struct History {
    /// Human-readable algorithm tag (e.g. `"SASGD(p=8,T=50)"`).
    pub label: String,
    /// Records in epoch order.
    pub records: Vec<EpochRecord>,
    /// Number of learners.
    pub p: usize,
    /// Aggregation interval.
    pub t_interval: usize,
    /// Observed gradient staleness (asynchronous algorithms record the
    /// measured distribution; SASGD's staleness is `T` by construction).
    pub staleness: Option<StalenessStats>,
    /// Final flat parameter vector of the evaluated learner, where the
    /// backend can provide it (the SASGD backends do). Lets equivalence
    /// tests compare backends parameter-for-parameter, not just by
    /// accuracy trajectories.
    pub final_params: Option<Vec<f32>>,
    /// Wire traffic of the run, where the backend can account for it: the
    /// threaded backend reports the comm-world's measured counters, the
    /// simulated backend the analytic element counts its cost model
    /// charges. `None` when the algorithm has no accounted channel.
    pub wire: Option<WireStats>,
    /// Membership changes observed by the fault-tolerant threaded backend
    /// (empty for fault-free runs and for backends without failure
    /// detection). One entry per sync round that confirmed learner loss.
    pub membership: Vec<MembershipEvent>,
    /// Ranks that retired mid-run instead of panicking: a non-coordinator
    /// learner whose fault-tolerant collective failed (eviction, a dead
    /// coordinator, any wire failure) stops participating and records why.
    /// The survivors' [`MembershipEvent`]s describe the same losses from
    /// the other side; this is the retiree's own account.
    pub retirements: Vec<RetirementEvent>,
    /// Per-update staleness series: one sample per (sync round, rank),
    /// capped at [`MAX_STALENESS_SAMPLES`] entries. Lockstep runs record
    /// all-zero `tau` by construction; event-driven runs record the
    /// measured lag and the effective rate after any staleness-aware γ
    /// scaling.
    pub staleness_series: Vec<StalenessSample>,
    /// Total aggregation (communication) rounds the run executed.
    pub sync_rounds: u64,
    /// Per-sync sparsification series: one sample per (sync round, rank)
    /// for compressed runs, capped at [`MAX_SPARSITY_SAMPLES`]. Empty for
    /// uncompressed runs.
    pub sparsity_series: Vec<SparsitySample>,
    /// Per-tree-level sparse wire profile summed over the run's sparse
    /// collectives (all ranks merged): how the index union grows with
    /// tree depth. Empty levels for dense runs.
    pub sparse_levels: SparseLevelProfile,
}

/// One (round, rank) staleness observation: how many global updates landed
/// between this rank's pull and its push (`tau`), and the learning rate
/// actually applied after any staleness-aware scaling (`gamma_eff` equals
/// the scheduled γ when scaling is off).
#[derive(Clone, Copy, Debug)]
pub struct StalenessSample {
    /// Sync round (0-based) the sample was taken in.
    pub round: u64,
    /// The observing rank.
    pub rank: usize,
    /// Measured staleness in global updates.
    pub tau: u64,
    /// Effective learning rate applied for this update.
    pub gamma_eff: f32,
}

/// Cap on [`History::staleness_series`] length, so long runs at large `p`
/// keep histories small; [`StalenessStats`] still summarizes every push.
pub const MAX_STALENESS_SAMPLES: usize = 4096;

/// One (round, rank) sparsification observation from a compressed sync:
/// what the k schedule actually kept and how much mass stayed behind.
#[derive(Clone, Copy, Debug)]
pub struct SparsitySample {
    /// Sync round (0-based) the sample was taken in.
    pub round: u64,
    /// The compressing rank.
    pub rank: usize,
    /// Nonzero coordinates actually transmitted this round.
    pub k_eff: usize,
    /// `‖residual‖₂` after this round's compression (error feedback).
    pub residual_norm: f32,
}

/// Cap on [`History::sparsity_series`] length, mirroring
/// [`MAX_STALENESS_SAMPLES`].
pub const MAX_SPARSITY_SAMPLES: usize = 4096;

/// One learner's graceful mid-run exit from a fault-tolerant run.
#[derive(Clone, Debug)]
pub struct RetirementEvent {
    /// The rank that retired.
    pub rank: usize,
    /// Global sync round (1-based) whose collective made it retire.
    pub round: u64,
    /// Human-readable cause (the typed error's rendering).
    pub reason: String,
}

/// One membership change in a fault-tolerant run: which sync round detected
/// learner loss, who was lost, how the run degraded, and what the detection
/// plus tree rebuild cost in wall-clock time.
#[derive(Clone, Debug)]
pub struct MembershipEvent {
    /// Global sync round (1-based) whose collective confirmed the loss.
    pub round: u64,
    /// Membership epoch after the change.
    pub epoch: u64,
    /// Ranks confirmed lost this round.
    pub lost: Vec<usize>,
    /// Learners remaining after the change.
    pub survivors: usize,
    /// Global rate `γp` after rescaling to the survivor count.
    pub gamma_p: f32,
    /// Wall-clock seconds the detecting sync round took (deadline waits,
    /// recovery sweep and result redistribution included).
    pub recovery_seconds: f64,
}

/// Elements and messages moved over the wire during a run, summed over all
/// ranks. The unit is `f32` elements (the wire format of every payload,
/// sparse ones included), so compressed and dense runs compare directly.
#[derive(Clone, Copy, Debug, Default)]
pub struct WireStats {
    /// Total `f32` elements sent.
    pub elements: u64,
    /// Total point-to-point messages sent.
    pub messages: u64,
}

/// Summary of observed gradient staleness: how many global updates landed
/// between a learner's pull and its subsequent push. The paper's core
/// argument is that SASGD bounds this *explicitly by T* while ASGD's
/// depends on relative learner speeds — these statistics make that
/// measurable.
#[derive(Clone, Copy, Debug, Default)]
pub struct StalenessStats {
    /// Mean staleness over all pushes.
    pub mean: f64,
    /// Worst staleness observed.
    pub max: u64,
    /// Number of pushes measured.
    pub pushes: u64,
}

impl StalenessStats {
    /// Summarize a list of per-push staleness observations.
    pub fn from_observations(obs: &[u64]) -> Option<Self> {
        if obs.is_empty() {
            return None;
        }
        let sum: u64 = obs.iter().sum();
        Some(StalenessStats {
            mean: sum as f64 / obs.len() as f64,
            max: obs.iter().copied().max().unwrap_or(0),
            pushes: obs.len() as u64,
        })
    }
}

impl History {
    /// Empty history.
    pub fn new(label: impl Into<String>, p: usize, t_interval: usize) -> Self {
        History {
            label: label.into(),
            records: Vec::new(),
            p,
            t_interval,
            staleness: None,
            final_params: None,
            wire: None,
            membership: Vec::new(),
            retirements: Vec::new(),
            staleness_series: Vec::new(),
            sync_rounds: 0,
            sparsity_series: Vec::new(),
            sparse_levels: SparseLevelProfile::default(),
        }
    }

    /// Append a staleness sample unless the series is already at
    /// [`MAX_STALENESS_SAMPLES`].
    pub fn push_staleness(&mut self, round: u64, rank: usize, tau: u64, gamma_eff: f32) {
        if self.staleness_series.len() < MAX_STALENESS_SAMPLES {
            self.staleness_series.push(StalenessSample {
                round,
                rank,
                tau,
                gamma_eff,
            });
        }
    }

    /// Append a sparsity sample unless the series is already at
    /// [`MAX_SPARSITY_SAMPLES`].
    pub fn push_sparsity(&mut self, round: u64, rank: usize, k_eff: usize, residual_norm: f32) {
        if self.sparsity_series.len() < MAX_SPARSITY_SAMPLES {
            self.sparsity_series.push(SparsitySample {
                round,
                rank,
                k_eff,
                residual_norm,
            });
        }
    }

    /// Final test accuracy (0 when no records).
    pub fn final_test_acc(&self) -> f32 {
        self.records.last().map_or(0.0, |r| r.test_acc)
    }

    /// Final training accuracy (0 when no records).
    pub fn final_train_acc(&self) -> f32 {
        self.records.last().map_or(0.0, |r| r.train_acc)
    }

    /// Best test accuracy over the run.
    pub fn best_test_acc(&self) -> f32 {
        self.records.iter().map(|r| r.test_acc).fold(0.0, f32::max)
    }

    /// Virtual seconds per collective epoch, averaged over the run
    /// (observed learner's clock / epochs).
    pub fn epoch_seconds(&self) -> f64 {
        match self.records.last() {
            Some(last) if last.epoch > 0.0 => {
                (last.compute_seconds + last.comm_seconds) / last.epoch
            }
            _ => 0.0,
        }
    }

    /// Fraction of the observed learner's time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        match self.records.last() {
            Some(last) => {
                let total = last.compute_seconds + last.comm_seconds;
                if total > 0.0 {
                    last.comm_seconds / total
                } else {
                    0.0
                }
            }
            None => 0.0,
        }
    }

    /// CSV rendering (one header + one row per record).
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "epoch,train_loss,train_acc,test_loss,test_acc,compute_seconds,comm_seconds,samples,grad_norm\n",
        );
        for r in &self.records {
            s.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                r.epoch,
                r.train_loss,
                r.train_acc,
                r.test_loss,
                r.test_acc,
                r.compute_seconds,
                r.comm_seconds,
                r.samples,
                r.grad_norm
            ));
        }
        s
    }

    /// Test-accuracy series as `(epoch, accuracy%)` pairs for plotting.
    pub fn test_acc_series(&self) -> Vec<(f64, f64)> {
        self.records
            .iter()
            .map(|r| (r.epoch, f64::from(r.test_acc) * 100.0))
            .collect()
    }

    /// Train-accuracy series as `(epoch, accuracy%)` pairs.
    pub fn train_acc_series(&self) -> Vec<(f64, f64)> {
        self.records
            .iter()
            .map(|r| (r.epoch, f64::from(r.train_acc) * 100.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(epoch: f64, test_acc: f32, comp: f64, comm: f64) -> EpochRecord {
        EpochRecord {
            epoch,
            train_loss: 1.0,
            train_acc: test_acc + 0.05,
            test_loss: 1.2,
            test_acc,
            compute_seconds: comp,
            comm_seconds: comm,
            // lint:allow(float-cast): test fixture — small exact integers.
            samples: (epoch * 100.0) as u64,
            grad_norm: 0.0,
        }
    }

    #[test]
    fn summary_statistics() {
        let mut h = History::new("x", 4, 50);
        assert_eq!(h.final_test_acc(), 0.0);
        h.records.push(rec(1.0, 0.5, 1.0, 1.0));
        h.records.push(rec(2.0, 0.7, 2.0, 2.0));
        h.records.push(rec(3.0, 0.6, 3.0, 3.0));
        assert_eq!(h.final_test_acc(), 0.6);
        assert_eq!(h.best_test_acc(), 0.7);
        assert!((h.epoch_seconds() - 2.0).abs() < 1e-12);
        assert!((h.comm_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut h = History::new("x", 1, 1);
        h.records.push(rec(1.0, 0.5, 1.0, 0.5));
        let csv = h.to_csv();
        assert!(csv.starts_with("epoch,"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn staleness_stats_summary() {
        assert!(StalenessStats::from_observations(&[]).is_none());
        let s = StalenessStats::from_observations(&[1, 3, 8]).expect("stats");
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!(s.max, 8);
        assert_eq!(s.pushes, 3);
    }

    #[test]
    fn series_convert_to_percent() {
        let mut h = History::new("x", 1, 1);
        h.records.push(rec(1.0, 0.5, 0.0, 0.0));
        assert_eq!(h.test_acc_series(), vec![(1.0, 50.0)]);
    }

    #[test]
    fn staleness_series_is_capped() {
        let mut h = History::new("x", 1, 1);
        for round in 0..(MAX_STALENESS_SAMPLES as u64 + 100) {
            h.push_staleness(round, 0, 1, 0.05);
        }
        assert_eq!(h.staleness_series.len(), MAX_STALENESS_SAMPLES);
        assert_eq!(h.staleness_series[0].round, 0);
        assert_eq!(h.staleness_series[0].tau, 1);
    }
}

//! Fault-tolerant collectives: membership epochs and a self-healing
//! allreduce.
//!
//! The plain collectives in [`crate::collectives`] assume every rank is
//! alive; one dead learner either hangs its parent forever or cascades a
//! panic. [`ft_allreduce`] instead runs the same binomial reduction over an
//! explicit [`Membership`] (the list of live ranks, versioned by an epoch
//! counter) with a deadline on every receive, and heals around failures:
//!
//! 1. **Reduce with masks.** Each contribution is prefixed by a
//!    contribution mask (`p` flags); partial sums carry the union of the
//!    ranks they cover. Children merge into parents in member order —
//!    the exact combine order of [`crate::collectives::reduce_tree`] — so
//!    with full membership and no faults the result is bitwise identical
//!    to the plain tree.
//! 2. **Reroute on peer loss.** A rank whose tree parent is gone (send
//!    fails with [`CommError::PeerGone`]) sends its partial directly to
//!    the coordinator (lowest live rank) on a recovery tag.
//! 3. **Recovery sweep.** If the coordinator's mask is incomplete after
//!    the tree phase, it drains recovery partials until the mask is
//!    complete or the deadline passes, then merges them **in ascending
//!    sender order** — deterministic for a fixed fault plan.
//! 4. **Membership epoch.** Ranks that contributed form the next
//!    membership; the epoch increments and the result broadcast carries
//!    the new mask, so every survivor rebuilds the same `p' < p` binomial
//!    tree for subsequent rounds. Evicted-but-alive ranks (long stalls)
//!    time out on the result and exit with [`FtError::Evicted`].
//!
//! The coordinator is a fixed point of the recovery protocol: its loss is
//! not survivable and surfaces as [`FtError::CoordinatorLost`] — the same
//! single-point-of-coordination the paper's parameter server has. A stall
//! of an *interior* tree node shorter than the deadline is absorbed;
//! longer, its whole subtree's contribution is stuck behind it and the
//! subtree is evicted with it (documented granularity of the detector —
//! a round later those ranks are simply gone, survivors proceed).

use std::time::Duration;

use crate::transport::Transport;
use crate::world::CommError;

/// Tag space mirroring `collectives::tag` (phases: 1 = tree partial,
/// 2 = recovery partial, 3 = result).
fn tag(op: u64, phase: u64) -> u64 {
    (op << 4) | phase
}

/// The live ranks of a world, sorted ascending, plus the epoch counter
/// that versions membership changes. All survivors hold identical
/// memberships: changes are decided by the coordinator and distributed
/// with the round result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Membership {
    members: Vec<usize>,
    epoch: u64,
}

impl Membership {
    /// Full membership of a `p`-rank world, epoch 0.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "membership needs at least one rank");
        Membership {
            members: (0..p).collect(),
            epoch: 0,
        }
    }

    /// Live ranks, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Membership epoch: number of membership changes so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live ranks.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when only one rank is left.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The recovery coordinator: the lowest live rank.
    pub fn coordinator(&self) -> usize {
        self.members[0]
    }

    /// Is `rank` a member?
    pub fn contains(&self, rank: usize) -> bool {
        self.members.binary_search(&rank).is_ok()
    }

    /// Position of `rank` in the member list (its virtual rank in the
    /// rebuilt binomial tree).
    pub fn index_of(&self, rank: usize) -> Option<usize> {
        self.members.binary_search(&rank).ok()
    }
}

/// Why a fault-tolerant collective gave up on this rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FtError {
    /// This rank was cut from the membership (it stalled past the deadline
    /// or its contribution was lost); survivors continue without it.
    Evicted {
        /// The evicted rank (self).
        rank: usize,
    },
    /// The recovery coordinator is unreachable — not survivable.
    CoordinatorLost {
        /// This rank (reporting the loss).
        rank: usize,
    },
    /// The caller is not in the membership it passed — it was evicted in
    /// an earlier round (or handed a stale membership) and must not
    /// participate. Typed so the engine can retire the rank gracefully;
    /// this used to be a panic.
    NotMember {
        /// The non-member rank (self).
        rank: usize,
    },
    /// An unexpected wire error (world torn down mid-collective).
    Comm(CommError),
}

impl From<CommError> for FtError {
    fn from(e: CommError) -> Self {
        FtError::Comm(e)
    }
}

impl std::fmt::Display for FtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtError::Evicted { rank } => write!(f, "rank {rank} evicted from membership"),
            FtError::CoordinatorLost { rank } => {
                write!(f, "rank {rank} lost the recovery coordinator")
            }
            FtError::NotMember { rank } => {
                write!(f, "rank {rank} called ft_allreduce while not a member")
            }
            FtError::Comm(e) => write!(f, "communication failed: {e}"),
        }
    }
}

impl std::error::Error for FtError {}

/// What a fault-tolerant round reports alongside its sum.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FtOutcome {
    /// Ranks evicted this round (empty for a clean round).
    pub lost: Vec<usize>,
    /// Membership epoch after the round.
    pub epoch: u64,
}

/// Element-wise `a += b` over mask-prefixed payloads.
fn add_assign(a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len(), "payload length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// Fault-tolerant sum-allreduce over the current membership.
///
/// On a clean round, `buf` ends as the member-wise sum (bitwise identical
/// to [`crate::collectives::allreduce_tree`] when membership is full) and
/// the returned [`FtOutcome::lost`] is empty. When members are lost the
/// survivors' `buf` is the sum over the ranks that contributed, the
/// membership shrinks to those ranks, and its epoch increments; all
/// survivors observe the identical new membership. `deadline` bounds every
/// receive of the reduce phase; the result wait scales it by the member
/// count so a coordinator that pays several detection timeouts is not
/// mistaken for a dead one.
pub fn ft_allreduce<T: Transport>(
    comm: &mut T,
    membership: &mut Membership,
    buf: &mut [f32],
    deadline: Duration,
) -> Result<FtOutcome, FtError> {
    let p = comm.size();
    let me = comm.rank();
    let m = membership.len();
    let Some(me_idx) = membership.index_of(me) else {
        // Evicted in an earlier round (or handed a stale membership):
        // a typed error the engine turns into graceful retirement.
        return Err(FtError::NotMember { rank: me });
    };
    if m == 1 {
        comm.next_op();
        return Ok(FtOutcome {
            lost: Vec::new(),
            epoch: membership.epoch(),
        });
    }
    let op = comm.next_op();
    let coord = membership.coordinator();
    let n = buf.len();

    // Mask-prefixed contribution: [p flags] ++ data.
    let mut payload = vec![0.0f32; p + n];
    payload[me] = 1.0;
    payload[p..].copy_from_slice(buf);

    // A child whose lowest set bit is 2^k first waits on its own k
    // children, paying up to one deadline per level when they are dead —
    // so the receive window for a level-k child must cover k cascaded
    // timeouts plus one: a fixed window would expire exactly as a
    // delayed-but-live partial arrives.
    let level_wait = |level: u32| deadline * (level + 1);

    if me_idx == 0 {
        // ── Coordinator: tree reduce, recovery sweep, decide, distribute.
        let mut bit = 1usize;
        let mut level = 0u32;
        while bit < m {
            let child_idx = bit;
            if child_idx < m {
                let child = membership.members()[child_idx];
                match comm.recv_deadline(child, tag(op, 1), level_wait(level)) {
                    Ok(part) => add_assign(&mut payload, &part),
                    Err(CommError::Timeout { .. }) => {} // subtree missing; sweep below
                    Err(e) => return Err(e.into()),
                }
            }
            bit <<= 1;
            level += 1;
        }
        let covered = |payload: &[f32], r: usize| payload[r] == 1.0;
        let missing: Vec<usize> = membership
            .members()
            .iter()
            .copied()
            .filter(|&r| !covered(&payload, r))
            .collect();
        if !missing.is_empty() {
            // Recovery sweep: ranks whose parent died reroute their
            // partials here. Buffer, then merge in ascending sender order
            // so the combine order is a function of the fault plan alone.
            let candidates: Vec<(usize, u64)> = missing.iter().map(|&r| (r, tag(op, 2))).collect();
            let mut coverage: Vec<bool> = (0..p).map(|r| covered(&payload, r)).collect();
            let mut recovered: Vec<(usize, Vec<f32>)> = Vec::new();
            // A rerouting rank may itself have paid cascaded timeouts
            // before its parent-send failed; wait out the full depth.
            let levels = m.next_power_of_two().trailing_zeros();
            loop {
                if membership.members().iter().all(|&r| coverage[r]) {
                    break;
                }
                match comm.recv_any_deadline(&candidates, level_wait(levels)) {
                    Ok((src, part)) => {
                        for (r, c) in coverage.iter_mut().enumerate() {
                            *c = *c || part[r] == 1.0;
                        }
                        recovered.push((src, part));
                    }
                    Err(CommError::Timeout { .. }) => break, // the rest are dead
                    Err(e) => return Err(e.into()),
                }
            }
            recovered.sort_by_key(|&(src, _)| src);
            for (_, part) in &recovered {
                add_assign(&mut payload, part);
            }
        }
        let new_members: Vec<usize> = membership
            .members()
            .iter()
            .copied()
            .filter(|&r| covered(&payload, r))
            .collect();
        let lost: Vec<usize> = membership
            .members()
            .iter()
            .copied()
            .filter(|&r| !covered(&payload, r))
            .collect();
        let epoch = membership.epoch() + u64::from(!lost.is_empty());
        assert!(epoch <= u64::from(u32::MAX), "membership epoch overflow");
        // Result: [epoch, final mask, data], sent directly to each
        // survivor — direct sends carry identical bytes regardless of
        // membership shape, so the data stays bitwise intact.
        let mut result = Vec::with_capacity(1 + p + n);
        result.push(f32::from_bits(epoch as u32));
        result.extend_from_slice(&payload);
        for &r in new_members.iter().skip(1) {
            // A survivor that died right after contributing is caught next
            // round; ignore the failed send.
            let _ = comm.send(r, tag(op, 3), result.clone());
        }
        buf.copy_from_slice(&payload[p..]);
        membership.members = new_members;
        membership.epoch = epoch;
        Ok(FtOutcome { lost, epoch })
    } else {
        // ── Non-coordinator: reduce into the tree, then await the result.
        let mut bit = 1usize;
        let mut level = 0u32;
        while bit < m {
            if me_idx & bit != 0 {
                let parent = membership.members()[me_idx & !bit];
                match comm.send(parent, tag(op, 1), payload.clone()) {
                    Ok(()) => {}
                    Err(CommError::PeerGone { .. }) => {
                        // Parent crashed: reroute the partial to the
                        // coordinator's recovery sweep.
                        comm.send(coord, tag(op, 2), payload)
                            .map_err(|_| FtError::CoordinatorLost { rank: me })?;
                    }
                    Err(e) => return Err(e.into()),
                }
                break;
            }
            let child_idx = me_idx | bit;
            if child_idx < m {
                let child = membership.members()[child_idx];
                match comm.recv_deadline(child, tag(op, 1), level_wait(level)) {
                    Ok(part) => add_assign(&mut payload, &part),
                    Err(CommError::Timeout { .. }) => {} // missing subtree; root sweeps
                    Err(e) => return Err(e.into()),
                }
            }
            bit <<= 1;
            level += 1;
        }
        // The coordinator may legitimately spend several deadlines on
        // detection and sweeping before it can answer.
        let result_wait = deadline * (2 * m as u32 + 4);
        let result = match comm.recv_deadline(coord, tag(op, 3), result_wait) {
            Ok(r) => r,
            Err(CommError::Timeout { .. }) => return Err(FtError::Evicted { rank: me }),
            Err(e) => return Err(e.into()),
        };
        let epoch = u64::from(result[0].to_bits());
        let new_members: Vec<usize> = (0..p).filter(|&r| result[1 + r] == 1.0).collect();
        let lost: Vec<usize> = membership
            .members()
            .iter()
            .copied()
            .filter(|&r| !new_members.contains(&r))
            .collect();
        if !new_members.contains(&me) {
            return Err(FtError::Evicted { rank: me });
        }
        buf.copy_from_slice(&result[1 + p..]);
        membership.members = new_members;
        membership.epoch = epoch;
        Ok(FtOutcome { lost, epoch })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::allreduce_tree;
    use crate::world::CommWorld;
    use std::thread;

    const D: Duration = Duration::from_millis(150);

    fn inputs(r: usize, n: usize) -> Vec<f32> {
        (0..n).map(|j| (r * n + j) as f32 * 0.1 + 1.0).collect()
    }

    #[test]
    fn fault_free_matches_plain_allreduce_bitwise() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            let n = 9;
            let plain = {
                let mut world = CommWorld::new(p);
                let comms = world.communicators();
                let mut out = vec![Vec::new(); p];
                thread::scope(|s| {
                    let hs: Vec<_> = comms
                        .into_iter()
                        .map(|mut c| {
                            s.spawn(move || {
                                let mut v = inputs(c.rank(), n);
                                allreduce_tree(&mut c, &mut v).expect("allreduce");
                                v
                            })
                        })
                        .collect();
                    for (slot, h) in out.iter_mut().zip(hs) {
                        *slot = h.join().expect("rank");
                    }
                });
                out
            };
            let ft = {
                let mut world = CommWorld::new(p);
                let comms = world.communicators();
                let mut out = vec![Vec::new(); p];
                thread::scope(|s| {
                    let hs: Vec<_> = comms
                        .into_iter()
                        .map(|mut c| {
                            s.spawn(move || {
                                let mut mem = Membership::new(c.size());
                                let mut v = inputs(c.rank(), n);
                                let oc = ft_allreduce(&mut c, &mut mem, &mut v, D)
                                    .expect("ft allreduce");
                                assert!(oc.lost.is_empty());
                                assert_eq!(mem.epoch(), 0);
                                v
                            })
                        })
                        .collect();
                    for (slot, h) in out.iter_mut().zip(hs) {
                        *slot = h.join().expect("rank");
                    }
                });
                out
            };
            for (a, b) in plain.iter().zip(&ft) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "p={p}");
                }
            }
        }
    }

    /// One survivor's view after a degraded round: summed buffer, live
    /// ranks, membership epoch.
    type SurvivorView = (Vec<f32>, Vec<usize>, u64);

    /// Kill `dead` ranks before the round; survivors must agree on the
    /// survivor-only sum and the shrunken membership, without deadlock.
    fn run_with_dead(p: usize, dead: &[usize], n: usize) -> Vec<SurvivorView> {
        let mut world = CommWorld::new(p);
        let comms = world.communicators();
        let mut out: Vec<Option<SurvivorView>> = (0..p).map(|_| None).collect();
        thread::scope(|s| {
            let hs: Vec<_> = comms
                .into_iter()
                .map(|mut c| {
                    let dead = dead.to_vec();
                    s.spawn(move || {
                        if dead.contains(&c.rank()) {
                            return None; // crash: endpoint drops here
                        }
                        let mut mem = Membership::new(c.size());
                        let mut v = inputs(c.rank(), n);
                        let oc = ft_allreduce(&mut c, &mut mem, &mut v, D).expect("ft allreduce");
                        Some((v, oc.lost, mem.epoch()))
                    })
                })
                .collect();
            for (slot, h) in out.iter_mut().zip(hs) {
                *slot = h.join().expect("rank thread");
            }
        });
        out.into_iter().flatten().collect()
    }

    #[test]
    fn one_dead_leaf_is_evicted_and_survivors_agree() {
        let p = 4;
        let n = 5;
        let dead = 3usize;
        let results = run_with_dead(p, &[dead], n);
        assert_eq!(results.len(), 3);
        let expect: Vec<f32> = (0..n)
            .map(|j| (0..p).filter(|&r| r != dead).map(|r| inputs(r, n)[j]).sum())
            .collect();
        for (v, lost, epoch) in &results {
            assert_eq!(lost, &vec![dead]);
            assert_eq!(*epoch, 1);
            for (a, b) in v.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn dead_interior_node_reroutes_live_children() {
        // Rank 2 (an interior node at p=8: children 3, 6) dies. Its live
        // children reroute to the coordinator; only rank 2 is evicted.
        let p = 8;
        let n = 4;
        let dead = 2usize;
        let results = run_with_dead(p, &[dead], n);
        assert_eq!(results.len(), 7);
        let expect: Vec<f32> = (0..n)
            .map(|j| (0..p).filter(|&r| r != dead).map(|r| inputs(r, n)[j]).sum())
            .collect();
        for (v, lost, epoch) in &results {
            assert_eq!(lost, &vec![dead], "only the dead rank is evicted");
            assert_eq!(*epoch, 1);
            for (a, b) in v.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn two_dead_ranks_and_next_round_is_clean() {
        let p = 8;
        let n = 3;
        let dead = [3usize, 5usize];
        let mut world = CommWorld::new(p);
        let comms = world.communicators();
        let mut out: Vec<Option<(Vec<f32>, u64)>> = (0..p).map(|_| None).collect();
        thread::scope(|s| {
            let hs: Vec<_> = comms
                .into_iter()
                .map(|mut c| {
                    s.spawn(move || {
                        if dead.contains(&c.rank()) {
                            return None;
                        }
                        let mut mem = Membership::new(c.size());
                        let mut v = inputs(c.rank(), n);
                        ft_allreduce(&mut c, &mut mem, &mut v, D).expect("round 1");
                        assert_eq!(mem.len(), 6);
                        // Second round over the rebuilt p'=6 tree: clean.
                        let mut w = inputs(c.rank(), n);
                        let oc = ft_allreduce(&mut c, &mut mem, &mut w, D).expect("round 2");
                        assert!(oc.lost.is_empty());
                        Some((w, mem.epoch()))
                    })
                })
                .collect();
            for (slot, h) in out.iter_mut().zip(hs) {
                *slot = h.join().expect("rank thread");
            }
        });
        let results: Vec<_> = out.into_iter().flatten().collect();
        assert_eq!(results.len(), 6);
        let expect: Vec<f32> = (0..n)
            .map(|j| {
                (0..p)
                    .filter(|r| !dead.contains(r))
                    .map(|r| inputs(r, n)[j])
                    .sum()
            })
            .collect();
        let first = &results[0].0;
        for (v, epoch) in &results {
            assert_eq!(*epoch, 1, "one membership change");
            for (a, b) in v.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-4);
            }
            // All survivors bitwise identical to each other.
            for (a, b) in v.iter().zip(first) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn non_member_caller_gets_typed_error_not_panic() {
        // A rank holding a membership it is not part of (evicted earlier,
        // or handed a stale one) must get FtError::NotMember — this was a
        // panic before.
        let mut world = CommWorld::new(4);
        let mut comms = world.communicators();
        let mut c3 = comms.pop().expect("rank 3");
        let mut mem = Membership {
            members: vec![0, 1, 2],
            epoch: 1,
        };
        let mut v = vec![1.0f32; 2];
        assert_eq!(
            ft_allreduce(&mut c3, &mut mem, &mut v, D),
            Err(FtError::NotMember { rank: 3 })
        );
        // Neither the membership nor the buffer was touched.
        assert_eq!(mem.members(), &[0, 1, 2]);
        assert_eq!(mem.epoch(), 1);
        assert_eq!(v, vec![1.0; 2]);
    }

    #[test]
    fn stalled_rank_is_evicted_with_typed_error() {
        let p = 4;
        let n = 2;
        let stall = 3usize; // a leaf: its stall cannot strand a subtree
        let short = Duration::from_millis(60);
        let mut world = CommWorld::new(p);
        let comms = world.communicators();
        let mut evicted = false;
        thread::scope(|s| {
            let hs: Vec<_> = comms
                .into_iter()
                .map(|mut c| {
                    s.spawn(move || {
                        if c.rank() == stall {
                            thread::sleep(short * 5); // past the deadline
                        }
                        let mut mem = Membership::new(c.size());
                        let mut v = inputs(c.rank(), n);
                        let out = ft_allreduce(&mut c, &mut mem, &mut v, short);
                        if c.rank() != stall {
                            // Keep survivor endpoints alive until the
                            // straggler's result wait has expired, so it
                            // observes Evicted rather than a torn-down
                            // world.
                            thread::sleep(short * 22);
                        }
                        out
                    })
                })
                .collect();
            for (r, h) in hs.into_iter().enumerate() {
                let res = h.join().expect("rank thread");
                if r == stall {
                    assert_eq!(res, Err(FtError::Evicted { rank: stall }));
                    evicted = true;
                } else {
                    let oc = res.expect("survivor");
                    assert_eq!(oc.lost, vec![stall]);
                }
            }
        });
        assert!(evicted);
    }
}

// virtual-path: crates/core/src/fixture_cast.rs
// BAD: `as` casts with syntactic float evidence in gradient math.

pub fn truncate(x: f32) -> usize {
    (x * 0.5) as usize
}

pub fn ceil_count(m: usize, ratio: f64) -> usize {
    (m as f64 * ratio).ceil() as usize
}

pub fn collapse(sum: f64, n: usize) -> f32 {
    (sum / n as f64) as f32
}

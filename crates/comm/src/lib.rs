//! # sasgd-comm
//!
//! Real-thread communication substrate — the stand-in for the paper's
//! CUDA-aware OpenMPI stack (`mpiT`).
//!
//! * [`transport`] — the [`transport::Transport`] trait every collective
//!   and engine backend is written against: `send`/`recv`/`recv_deadline`/
//!   `recv_any` over opaque rank endpoints, with typed [`world::CommError`]
//!   as the only failure channel;
//! * [`world`] — a process-group abstraction: `p` ranks exchanging typed
//!   messages over crossbeam channels, with global traffic accounting —
//!   the in-process [`Transport`] implementation;
//! * [`socket`] — a TCP implementation of the same trait: full-mesh
//!   rendezvous plus the [`protocol`] length-prefixed frame format, for
//!   ranks running as separate OS processes;
//! * [`mock`] — a minimal reference implementation for conformance
//!   testing and failure-path injection;
//! * [`collectives`] — broadcast, binomial-tree reduce/allreduce
//!   (the `O(m log p)` pattern the paper's cost analysis assumes), a
//!   bandwidth-optimal ring allreduce for the ablation bench, and a
//!   barrier;
//! * [`ps`] — a (sharded) parameter server with asynchronous `push` and
//!   round-trip `pull`, as used by Downpour and EAMSGD, plus an
//!   epoch-versioned consistent snapshot pull and deadline-bounded
//!   fetches;
//! * [`ps_transport`] — the same sharded-PS protocol expressed purely in
//!   [`Transport`] operations, so shards can live in
//!   other processes;
//! * [`fault`] — deterministic crash/stall/drop fault plans for the
//!   threaded backend;
//! * [`ft`] — membership epochs and a self-healing allreduce that
//!   survives learner loss by rebuilding the binomial tree over the
//!   survivors.
//!
//! Everything is deterministic given a deterministic caller: collectives
//! use fixed reduction orders, so "SASGD over threads" equals "SASGD
//! simulated" bit for bit (an integration test in the workspace root checks
//! this).
//!
//! ## Example: 4-rank allreduce
//!
//! ```
//! use sasgd_comm::world::CommWorld;
//! use sasgd_comm::collectives::allreduce_tree;
//! use std::thread;
//!
//! let mut world = CommWorld::new(4);
//! let mut comms = world.communicators();
//! thread::scope(|s| {
//!     for (r, mut comm) in comms.drain(..).enumerate() {
//!         s.spawn(move || {
//!             let mut v = vec![r as f32 + 1.0; 3];
//!             allreduce_tree(&mut comm, &mut v).expect("allreduce");
//!             assert_eq!(v, vec![10.0; 3]); // 1+2+3+4
//!         });
//!     }
//! });
//! ```

pub mod collectives;
pub mod fault;
pub mod ft;
pub mod hierarchy;
pub mod mock;
pub mod protocol;
pub mod ps;
pub mod ps_transport;
pub mod socket;
pub mod sparse;
pub mod transport;
pub mod world;

pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use ft::{ft_allreduce, FtError, FtOutcome, Membership};
pub use hierarchy::{grouped, hierarchical_allreduce, GroupedComm};
pub use mock::{mock_world, MockTransport};
pub use protocol::Frame;
pub use ps::{PsClient, PsConfig, PsError, PsServer};
pub use ps_transport::{serve_shard, PsLayout, PsTransportClient, PsTransportError};
pub use socket::{loopback_addrs, SocketTransport};
pub use sparse::{sparse_allreduce_tree, sparse_reduce_tree, SparseVec};
pub use transport::{InProcTransport, Transport};
pub use world::{CommError, CommWorld, Communicator, DelaySchedule, FaultSchedule};

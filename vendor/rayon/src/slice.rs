//! Parallel mutable-slice chunking (`par_chunks_mut`).

use crate::{run_indexed, SharedPtr};

/// Extension trait adding `par_chunks_mut` to mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into non-overlapping chunks of `chunk_size` elements (last may
    /// be shorter), processed in parallel. Chunk `i` always covers elements
    /// `i*chunk_size .. min((i+1)*chunk_size, len)` regardless of the number
    /// of worker threads.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParChunksMut {
            geo: ChunkGeo {
                ptr: SharedPtr(self.as_mut_ptr()),
                len: self.len(),
                chunk: chunk_size,
            },
            _marker: std::marker::PhantomData,
        }
    }
}

/// Raw geometry of a chunked slice; `Copy` + `Sync` so worker closures can
/// capture it without dragging `&mut [T]` lifetimes along.
struct ChunkGeo<T> {
    ptr: SharedPtr<T>,
    len: usize,
    chunk: usize,
}

impl<T> Clone for ChunkGeo<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for ChunkGeo<T> {}

impl<T> ChunkGeo<T> {
    fn num_chunks(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }

    /// Chunk `i` as a mutable slice.
    ///
    /// # Safety
    /// Each `i` must be consumed by exactly one worker, and the original
    /// slice must outlive the use (guaranteed by `ParChunksMut`'s
    /// lifetime).
    unsafe fn chunk_at<'a>(self, i: usize) -> &'a mut [T] {
        let start = i * self.chunk;
        let len = self.chunk.min(self.len - start);
        std::slice::from_raw_parts_mut(self.ptr.0.add(start), len)
    }
}

/// Lazy parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T: Send> {
    geo: ChunkGeo<T>,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair chunk indices with chunks.
    pub fn enumerate(self) -> EnumerateChunks<'a, T> {
        EnumerateChunks { inner: self }
    }

    /// Walk both chunk streams in lock-step (chunk `i` of each side).
    pub fn zip<U: Send>(self, other: ParChunksMut<'a, U>) -> ZipChunks<'a, T, U> {
        ZipChunks { a: self, b: other }
    }

    /// Apply `op` to every chunk, in parallel.
    pub fn for_each<F: Fn(&'a mut [T]) + Sync>(self, op: F) {
        let geo = self.geo;
        run_indexed(geo.num_chunks(), move |i| {
            // SAFETY: run_indexed hands each index to exactly one worker.
            op(unsafe { geo.chunk_at(i) });
        });
    }
}

/// `par_chunks_mut(..).enumerate()`.
pub struct EnumerateChunks<'a, T: Send> {
    inner: ParChunksMut<'a, T>,
}

impl<'a, T: Send> EnumerateChunks<'a, T> {
    /// Apply `op(i, chunk_i)` to every chunk, in parallel.
    pub fn for_each<F: Fn((usize, &'a mut [T])) + Sync>(self, op: F) {
        let geo = self.inner.geo;
        run_indexed(geo.num_chunks(), move |i| {
            // SAFETY: each index is consumed by exactly one worker.
            op((i, unsafe { geo.chunk_at(i) }));
        });
    }
}

/// `par_chunks_mut(..).zip(par_chunks_mut(..))`.
pub struct ZipChunks<'a, T: Send, U: Send> {
    a: ParChunksMut<'a, T>,
    b: ParChunksMut<'a, U>,
}

impl<'a, T: Send, U: Send> ZipChunks<'a, T, U> {
    /// Pair chunk indices with chunk pairs.
    pub fn enumerate(self) -> EnumerateZipChunks<'a, T, U> {
        EnumerateZipChunks { inner: self }
    }

    /// Apply `op((chunk_a_i, chunk_b_i))` for every `i`, in parallel.
    pub fn for_each<F: Fn((&'a mut [T], &'a mut [U])) + Sync>(self, op: F) {
        let (ga, gb) = (self.a.geo, self.b.geo);
        run_indexed(ga.num_chunks().min(gb.num_chunks()), move |i| {
            // SAFETY: each index is consumed by exactly one worker.
            op(unsafe { (ga.chunk_at(i), gb.chunk_at(i)) });
        });
    }
}

/// `par_chunks_mut(..).zip(..).enumerate()`.
pub struct EnumerateZipChunks<'a, T: Send, U: Send> {
    inner: ZipChunks<'a, T, U>,
}

impl<'a, T: Send, U: Send> EnumerateZipChunks<'a, T, U> {
    /// Apply `op((i, (chunk_a_i, chunk_b_i)))` for every `i`, in parallel.
    pub fn for_each<F: Fn((usize, (&'a mut [T], &'a mut [U]))) + Sync>(self, op: F) {
        let (ga, gb) = (self.inner.a.geo, self.inner.b.geo);
        run_indexed(ga.num_chunks().min(gb.num_chunks()), move |i| {
            // SAFETY: each index is consumed by exactly one worker.
            op((i, unsafe { (ga.chunk_at(i), gb.chunk_at(i)) }));
        });
    }
}

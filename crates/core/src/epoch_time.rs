//! Analytic epoch-time model — the machinery behind Figs 1, 4, 5 and 6.
//!
//! Epoch time decomposes into per-minibatch compute (from the network's
//! MAC count), per-aggregation communication (from the topology model),
//! the bulk-synchronous straggler wait (estimated by deterministic Monte
//! Carlo over the jitter model), and fixed per-epoch overhead. Absolute
//! seconds are simulated-platform seconds; the paper's *shapes* — comm
//! share by workload, T-speedups, algorithm orderings — are the
//! reproduction targets.

use sasgd_nn::models;
use sasgd_simnet::{CostModel, JitterModel};
use sasgd_tensor::SeedRng;

/// A training workload: model size/FLOPs plus dataset geometry.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name.
    pub name: &'static str,
    /// Model parameters `m`.
    pub model_params: usize,
    /// Forward MACs per sample.
    pub macs_per_sample: u64,
    /// Minibatch size `M` used in the paper's timing runs.
    pub minibatch: usize,
    /// Training-set size `n`.
    pub train_samples: usize,
}

impl Workload {
    /// The CIFAR-10 workload: Table I network, M = 64, n = 50 000.
    pub fn cifar10() -> Self {
        let model = models::cifar_cnn(&mut SeedRng::new(0));
        Workload {
            name: "CIFAR-10",
            model_params: model.param_len(),
            macs_per_sample: model.macs_per_sample(),
            minibatch: 64,
            train_samples: 50_000,
        }
    }

    /// The NLC-F workload: Table II network, M = 11 (the paper's Fig 1
    /// batch), n = 2 500.
    pub fn nlc_f() -> Self {
        let model = models::nlc_net(20, &mut SeedRng::new(0));
        Workload {
            name: "NLC-F",
            model_params: model.param_len(),
            macs_per_sample: model.macs_per_sample(),
            minibatch: 11,
            train_samples: 2_500,
        }
    }
}

/// How gradients are aggregated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregation {
    /// No aggregation (sequential SGD).
    None,
    /// SASGD's tree allreduce.
    AllreduceTree,
    /// Ring allreduce (ablation).
    AllreduceRing,
    /// Downpour/EAMSGD parameter-server round trip.
    ParamServer,
}

/// Epoch-time decomposition for one learner.
#[derive(Clone, Copy, Debug)]
pub struct EpochTime {
    /// Minibatch computation seconds.
    pub compute_s: f64,
    /// Communication seconds (transfers plus synchronous wait).
    pub comm_s: f64,
    /// Fixed per-epoch overhead seconds.
    pub overhead_s: f64,
}

impl EpochTime {
    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.compute_s + self.comm_s + self.overhead_s
    }

    /// Fraction of compute+comm time spent communicating (the Fig 1
    /// quantity).
    pub fn comm_fraction(&self) -> f64 {
        let ct = self.compute_s + self.comm_s;
        if ct > 0.0 {
            self.comm_s / ct
        } else {
            0.0
        }
    }
}

/// Expected epoch time for one learner of `p`, aggregating every `t`
/// minibatches.
///
/// For the bulk-synchronous kinds the straggler wait is estimated with
/// 256 deterministic Monte Carlo rounds of the jitter model.
///
/// ```
/// use sasgd_core::epoch_time::{epoch_time, Aggregation, Workload};
/// use sasgd_simnet::{CostModel, JitterModel};
/// let cost = CostModel::paper_testbed();
/// let w = Workload::cifar10();
/// let t1 = epoch_time(&cost, &w, Aggregation::AllreduceTree, 8, 1, &JitterModel::default(), 1);
/// let t50 = epoch_time(&cost, &w, Aggregation::AllreduceTree, 8, 50, &JitterModel::default(), 1);
/// assert!(t50.total() < t1.total(), "larger T amortizes communication");
/// ```
pub fn epoch_time(
    cost: &CostModel,
    w: &Workload,
    kind: Aggregation,
    p: usize,
    t: usize,
    jitter: &JitterModel,
    seed: u64,
) -> EpochTime {
    assert!(p >= 1 && t >= 1);
    let mb_per_learner = w.train_samples / (p * w.minibatch);
    assert!(mb_per_learner > 0, "workload too small for p={p}");
    let step = cost.minibatch_compute(w.macs_per_sample, w.minibatch, p);
    let compute_s = mb_per_learner as f64 * step;
    // Aggregations per epoch can be fractional (one aggregation every
    // T minibatches straddles epoch boundaries when T > minibatches).
    let aggs = mb_per_learner as f64 / t as f64;
    let per_agg = match kind {
        Aggregation::None => 0.0,
        Aggregation::AllreduceTree => cost.allreduce_tree(w.model_params, p).seconds,
        Aggregation::AllreduceRing => cost.allreduce_ring(w.model_params, p).seconds,
        Aggregation::ParamServer => cost.ps_roundtrip(w.model_params, p).seconds,
    };
    let wait = match kind {
        Aggregation::AllreduceTree | Aggregation::AllreduceRing if p > 1 => {
            straggler_wait(step, p, t, jitter, seed)
        }
        _ => 0.0,
    };
    EpochTime {
        compute_s,
        comm_s: aggs * (per_agg + wait),
        overhead_s: cost.epoch_overhead,
    }
}

/// Expected extra wait per aggregation: `E[max_i B_i] − E[B]` where `B_i`
/// is a learner's `t`-minibatch block time under jitter.
fn straggler_wait(step: f64, p: usize, t: usize, jitter: &JitterModel, seed: u64) -> f64 {
    const ROUNDS: usize = 256;
    let mut rng = SeedRng::new(seed).split(0x57A6);
    let speeds: Vec<f64> = (0..p).map(|id| jitter.learner_factor(id, seed)).collect();
    let mut total = 0.0;
    for _ in 0..ROUNDS {
        let mut max_b = 0.0f64;
        let mut mean_b = 0.0f64;
        for speed in &speeds {
            let mut b = 0.0;
            for _ in 0..t {
                b += step * speed * jitter.minibatch_factor(&mut rng);
            }
            max_b = max_b.max(b);
            mean_b += b / p as f64;
        }
        total += max_b - mean_b;
    }
    total / ROUNDS as f64
}

/// Speedup of a `p`-learner configuration over sequential SGD on the same
/// workload (the horizontal-line comparison of Figs 4 and 5).
pub fn speedup_over_sequential(
    cost: &CostModel,
    w: &Workload,
    kind: Aggregation,
    p: usize,
    t: usize,
    jitter: &JitterModel,
    seed: u64,
) -> f64 {
    let seq = epoch_time(cost, w, Aggregation::None, 1, 1, jitter, seed).total();
    let par = epoch_time(cost, w, kind, p, t, jitter, seed).total();
    seq / par
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CostModel, JitterModel) {
        (CostModel::paper_testbed(), JitterModel::default())
    }

    #[test]
    fn workload_constants_match_paper() {
        let c = Workload::cifar10();
        assert_eq!(c.model_params, models::CIFAR_CNN_PARAMS);
        let n = Workload::nlc_f();
        assert_eq!(n.model_params, models::NLC_NET_PARAMS);
        assert!(
            n.model_params > 3 * c.model_params,
            "NLC model is ~3.4× larger"
        );
    }

    #[test]
    fn fig4_shape_t50_faster_than_t1_cifar() {
        let (cost, jit) = setup();
        let w = Workload::cifar10();
        let t1 = epoch_time(&cost, &w, Aggregation::AllreduceTree, 8, 1, &jit, 1).total();
        let t50 = epoch_time(&cost, &w, Aggregation::AllreduceTree, 8, 50, &jit, 1).total();
        let ratio = t1 / t50;
        assert!((1.1..2.5).contains(&ratio), "paper: ≈1.3×; got {ratio}");
    }

    #[test]
    fn fig5_shape_t50_much_faster_than_t1_nlc() {
        let (cost, jit) = setup();
        let w = Workload::nlc_f();
        let t1 = epoch_time(&cost, &w, Aggregation::AllreduceTree, 8, 1, &jit, 1).total();
        let t50 = epoch_time(&cost, &w, Aggregation::AllreduceTree, 8, 50, &jit, 1).total();
        let ratio = t1 / t50;
        assert!(
            ratio > 3.0,
            "paper: ≈9.7×; communication-bound workload, got {ratio}"
        );
    }

    #[test]
    fn fig6_shape_sasgd_beats_ps_at_t1_similar_at_t50() {
        let (cost, jit) = setup();
        for w in [Workload::cifar10(), Workload::nlc_f()] {
            let sasgd1 = epoch_time(&cost, &w, Aggregation::AllreduceTree, 8, 1, &jit, 1).total();
            let ps1 = epoch_time(&cost, &w, Aggregation::ParamServer, 8, 1, &jit, 1).total();
            assert!(sasgd1 < ps1, "{}: SASGD T=1 {sasgd1} vs PS {ps1}", w.name);
            let sasgd50 = epoch_time(&cost, &w, Aggregation::AllreduceTree, 8, 50, &jit, 1).total();
            let ps50 = epoch_time(&cost, &w, Aggregation::ParamServer, 8, 50, &jit, 1).total();
            let rel = (ps50 - sasgd50) / sasgd50;
            assert!(
                rel < 0.25,
                "{}: at T=50 epoch times converge, rel {rel}",
                w.name
            );
        }
    }

    #[test]
    fn speedup_is_sublinear_but_real() {
        let (cost, jit) = setup();
        for (w, lo, hi) in [
            (Workload::cifar10(), 2.5, 8.0),
            (Workload::nlc_f(), 2.5, 8.0),
        ] {
            let s = speedup_over_sequential(&cost, &w, Aggregation::AllreduceTree, 8, 50, &jit, 1);
            assert!(
                (lo..hi).contains(&s),
                "{}: speedup {s} (paper: 4.45 / 5.35)",
                w.name
            );
        }
    }

    #[test]
    fn straggler_wait_grows_with_p_and_shrinks_per_step_with_t() {
        let jit = JitterModel::default();
        let w2 = straggler_wait(0.01, 2, 10, &jit, 1);
        let w16 = straggler_wait(0.01, 16, 10, &jit, 1);
        assert!(w16 > w2, "more learners, longer max");
        // Relative wait per minibatch falls with T (averaging effect).
        let r1 = straggler_wait(0.01, 8, 1, &jit, 1) / (0.01 * 1.0);
        let r50 = straggler_wait(0.01, 8, 50, &jit, 1) / (0.01 * 50.0);
        assert!(r50 < r1, "relative straggler cost amortizes: {r50} vs {r1}");
    }

    #[test]
    fn no_jitter_no_wait() {
        let jit = JitterModel::none();
        assert!(straggler_wait(0.01, 8, 5, &jit, 1).abs() < 1e-12);
    }

    #[test]
    fn ring_beats_tree_for_large_models_at_scale() {
        // Bandwidth-optimal ring: fewer bytes per rank for big m.
        let (cost, jit) = setup();
        let w = Workload::nlc_f();
        let tree = epoch_time(&cost, &w, Aggregation::AllreduceTree, 8, 1, &jit, 1).comm_s;
        let ring = epoch_time(&cost, &w, Aggregation::AllreduceRing, 8, 1, &jit, 1).comm_s;
        assert!(ring < tree, "ring {ring} vs tree {tree}");
    }
}

//! Seeded random-number utilities.
//!
//! Every stochastic choice in the reproduction — parameter initialization,
//! minibatch sampling, dropout masks, simulated learner jitter — flows
//! through a [`SeedRng`] so that experiments are bit-reproducible and the
//! "SASGD with T=1 equals synchronous SGD" integration tests can compare
//! trajectories exactly.

use rand::distributions::Distribution;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::tensor::Tensor;

/// A deterministic, splittable RNG (ChaCha8).
///
/// ChaCha8 is chosen over the default thread RNG because it is seedable,
/// portable across platforms, and fast enough that RNG never shows up in
/// profiles of the training loops.
#[derive(Clone, Debug)]
pub struct SeedRng {
    inner: ChaCha8Rng,
}

impl SeedRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeedRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream; `tag` distinguishes siblings.
    ///
    /// Used to give each simulated learner its own stream from one
    /// experiment seed without the streams being correlated.
    pub fn split(&self, tag: u64) -> Self {
        // Mix the tag through SplitMix64 so adjacent tags land far apart.
        let mut z = self
            .base_seed()
            .wrapping_add(tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SeedRng::new(z ^ (z >> 31))
    }

    fn base_seed(&self) -> u64 {
        // The ChaCha seed is 32 bytes; fold the first 8 back to u64.
        let seed = self.inner.get_seed();
        u64::from_le_bytes(seed[..8].try_into().expect("seed has >= 8 bytes"))
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal via Box–Muller (no extra dependency).
    pub fn normal(&mut self) -> f32 {
        loop {
            let u1 = self.uniform();
            if u1 > f32::EPSILON {
                let u2 = self.uniform();
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            }
        }
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is empty");
        self.inner.gen_range(0..n)
    }

    /// `true` with probability `p`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample from any `rand` distribution.
    pub fn sample<T, D: Distribution<T>>(&mut self, d: &D) -> T {
        d.sample(&mut self.inner)
    }

    /// Tensor with i.i.d. `N(0, std^2)` entries.
    pub fn normal_tensor(&mut self, dims: &[usize], std: f32) -> Tensor {
        let n: usize = dims.iter().product();
        let data = (0..n).map(|_| self.normal() * std).collect();
        Tensor::from_vec(data, dims)
    }

    /// Tensor with i.i.d. uniform entries in `[-bound, bound]`.
    pub fn uniform_tensor(&mut self, dims: &[usize], bound: f32) -> Tensor {
        let n: usize = dims.iter().product();
        let data = (0..n).map(|_| self.uniform_range(-bound, bound)).collect();
        Tensor::from_vec(data, dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SeedRng::new(42);
        let mut b = SeedRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeedRng::new(1);
        let mut b = SeedRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn split_streams_are_deterministic_and_distinct() {
        let root = SeedRng::new(7);
        let mut c0 = root.split(0);
        let mut c0b = root.split(0);
        let mut c1 = root.split(1);
        assert_eq!(c0.uniform().to_bits(), c0b.uniform().to_bits());
        let overlap = (0..64).filter(|_| c0.uniform() == c1.uniform()).count();
        assert!(overlap < 4, "sibling streams look correlated");
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut r = SeedRng::new(3);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut r = SeedRng::new(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let k = r.below(5);
            assert!(k < 5);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SeedRng::new(11);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn tensor_inits_have_right_shape_and_spread() {
        let mut r = SeedRng::new(5);
        let t = r.normal_tensor(&[10, 10], 0.5);
        assert_eq!(t.numel(), 100);
        let u = r.uniform_tensor(&[100], 0.2);
        assert!(u.as_slice().iter().all(|&x| (-0.2..=0.2).contains(&x)));
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = SeedRng::new(13);
        let hits = (0..10_000).filter(|_| r.bernoulli(0.3)).count();
        assert!((hits as f32 / 10_000.0 - 0.3).abs() < 0.02);
    }
}

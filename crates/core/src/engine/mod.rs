//! The unified execution engine.
//!
//! Every distributed algorithm in this crate is the composition of the
//! *same* learner loop with a different aggregation rule. This module
//! factors that observation into code:
//!
//! * `AggregationStrategy` — the pluggable aggregation rule. A strategy
//!   declares its cadence (lockstep or event-driven), its sync interval,
//!   and implements the handful of hooks where algorithms actually differ:
//!   what a local step does, what happens at a sync point, what model is
//!   evaluated, and what the final parameters are.
//! * [`simulated`] — the virtual-time backend. Runs any strategy over the
//!   `sasgd-simnet` cost model with deterministic virtual clocks,
//!   reproducing the pre-engine per-algorithm implementations
//!   element-for-element (pinned by `tests/engine_golden.rs`).
//! * [`threaded`] — the real-parallelism backend. Runs strategies over OS
//!   threads with the `sasgd-comm` collectives and parameter server,
//!   measuring wall-clock time and actual wire traffic.
//! * [`Executor`] — the public entry point selecting a [`Backend`].
//!
//! The simulated aggregation arithmetic deliberately mirrors the wire
//! collectives' reduction order (binomial tree, rank-ordered averaging),
//! so synchronous strategies produce bitwise-identical parameters on both
//! backends.

use std::collections::VecDeque;

use sasgd_data::{make_shards, Dataset, Shard};
use sasgd_nn::Model;

use sasgd_comm::sparse::SparseLevelProfile;

use crate::history::{History, SparsitySample, StalenessStats, WireStats};
use crate::schedule::SyncPolicy;
use crate::trainer::{Learner, TrainConfig};

pub mod rank;
pub mod simulated;
pub mod threaded;

pub use threaded::{
    run_threaded_averaging, run_threaded_eamsgd, run_threaded_sequential,
    try_run_threaded_averaging,
};

/// How a strategy's learners advance relative to each other. Every
/// strategy declares a *default* cadence; [`TrainConfig::cadence`] can
/// override it per run, and every strategy executes under either value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cadence {
    /// All learners take a step, then the engine checks the sync policy —
    /// the bulk-synchronous execution the paper's Algorithm 1 describes.
    Lockstep,
    /// Learners run free on their own virtual clocks and reach sync points
    /// one at a time in `(completion time, rank)` order.
    EventDriven,
}

/// What a sync point touches under the event-driven cadence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommScope {
    /// One learner exchanges with shared state (a parameter server or
    /// center variable) without waiting for peers — Downpour, EAMSGD.
    Individual,
    /// All learners rendezvous for a collective (allreduce / averaging) —
    /// SASGD, Local SGD, DaSGD, hierarchical, model averaging.
    Collective,
}

/// Per-round context handed to
/// `AggregationStrategy::should_communicate`.
#[derive(Clone, Copy, Debug)]
pub struct RoundCtx {
    /// Local steps taken since the last communication.
    pub steps_since_sync: usize,
    /// The sync policy's interval currently in force.
    pub current_t: usize,
    /// Global sync rounds completed so far (0 before the first sync) —
    /// adaptive compression schedules key their telemetry off this.
    pub round: u64,
}

/// A strategy's verdict on whether this round communicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommDecision {
    /// Keep taking local steps.
    Continue,
    /// Run the aggregation now.
    Communicate,
}

/// The pluggable aggregation rule the engine composes with its learner
/// loop. Default implementations encode the most common behaviour
/// (sequential-SGD-like); each algorithm overrides only where it differs.
///
/// Every strategy executes under both cadences. Lockstep uses
/// [`sync`](AggregationStrategy::sync) and friends; the event-driven loops
/// use [`on_local_step`](AggregationStrategy::on_local_step),
/// [`should_communicate`](AggregationStrategy::should_communicate) driven
/// by the strategy's [`SyncPolicy`], and — for
/// [`CommScope::Individual`] strategies —
/// [`event_sync`](AggregationStrategy::event_sync) against shared state.
/// Strategy state that is global in the simulated world (the shared
/// parameter vector, a parameter server, a center variable, error-feedback
/// residuals) lives inside the strategy.
#[allow(unused_variables)] // default hook bodies ignore their arguments
#[allow(clippy::too_many_arguments)] // hooks carry the full step context
pub(crate) trait AggregationStrategy {
    /// Display label matching the paper's plot legends.
    fn label(&self) -> String;

    /// Number of learners.
    fn p(&self) -> usize;

    /// Default execution cadence ([`TrainConfig::cadence`] overrides it).
    fn cadence(&self) -> Cadence {
        Cadence::Lockstep
    }

    /// What a sync point touches under the event-driven cadence.
    fn comm_scope(&self) -> CommScope {
        CommScope::Collective
    }

    /// Local steps between sync points (`0` = never sync).
    fn sync_interval(&self) -> usize {
        0
    }

    /// The T schedule driving this strategy's communication. The default
    /// is the fixed interval every paper algorithm uses; adaptive
    /// strategies return a policy built from a
    /// [`TSchedule`](crate::schedule::TSchedule) instead.
    fn sync_policy(&self) -> SyncPolicy {
        SyncPolicy::fixed(self.sync_interval())
    }

    /// Decide whether this round communicates. The default mirrors the
    /// classic counter: communicate exactly when `steps_since_sync`
    /// reaches the policy's interval (never when the interval is 0).
    fn should_communicate(&mut self, ctx: RoundCtx) -> CommDecision {
        if ctx.current_t >= 1 && ctx.steps_since_sync >= ctx.current_t {
            CommDecision::Communicate
        } else {
            CommDecision::Continue
        }
    }

    /// End-of-round scalar the [`SyncPolicy`] adapts on (lower = better;
    /// e.g. Local SGD's average-displacement norm). `None` = no signal,
    /// the policy never adapts.
    fn sync_signal(&mut self) -> Option<f32> {
        None
    }

    /// Observe learner `id`'s measured staleness `tau` at a sync point and
    /// return the learning rate to apply for the update. The default
    /// returns `gamma` unchanged; staleness-aware strategies scale it
    /// (γ/(1+τ)).
    fn observe_staleness(&mut self, id: usize, tau: u64, gamma: f32) -> f32 {
        gamma
    }

    /// Staleness a collective-scope strategy imposes by construction
    /// (DaSGD applies the round-`k` average one round late, so 1; plain
    /// collectives apply fresh state, so 0).
    fn collective_tau(&self) -> u64 {
        0
    }

    /// Aggregation interval reported in [`History`].
    fn history_interval(&self) -> usize {
        self.sync_interval().max(1)
    }

    /// Partition the training data across learners.
    fn shards(&self, train: &Dataset, cfg: &TrainConfig) -> Vec<Shard> {
        make_shards(train, self.p(), cfg.shard_strategy)
    }

    /// Whether lockstep epochs truncate to the smallest shard's
    /// whole-minibatch count (bulk-synchrony needs aligned step counts);
    /// `false` lets every learner walk its full shard, ragged tails
    /// included.
    fn lockstep_truncates(&self) -> bool {
        true
    }

    /// One-time initialization once all replicas share `x0`. `factory`
    /// builds extra replicas if the strategy needs them. Returns the
    /// per-learner initial communication charge (e.g. the `x0` broadcast).
    fn setup(&mut self, factory: &mut dyn FnMut() -> Model, x0: &[f32], cfg: &TrainConfig) -> f64 {
        0.0
    }

    /// Fractional epoch fed to the γ schedule at a lockstep step.
    fn gamma_epoch(&self, epoch: usize, step: usize, steps: usize) -> f64 {
        (epoch - 1) as f64 + step as f64 / steps as f64
    }

    /// One local minibatch (lockstep cadence).
    fn local_step(
        &mut self,
        l: &mut Learner,
        id: usize,
        data: &Dataset,
        idx: &[usize],
        gamma: f32,
        step_s: f64,
        jitter: f64,
    ) {
        l.local_step(data, idx, gamma, step_s, jitter);
    }

    /// Global sync across all learners (lockstep cadence).
    fn sync(&mut self, learners: &mut [Learner], gamma_now: f32) {}

    /// End-of-epoch bookkeeping, before the epoch record is taken (e.g.
    /// refresh an averaged evaluation replica, charge a one-shot
    /// reduction).
    fn epoch_end(&mut self, learners: &mut [Learner], epoch: usize, cfg: &TrainConfig) {}

    /// The model evaluated for epoch records.
    fn eval_model<'a>(&'a mut self, learners: &'a mut [Learner]) -> &'a mut Model {
        &mut learners[0].model
    }

    /// Staleness summary given the number of sync points executed
    /// (lockstep; the event engine measures staleness directly).
    fn staleness(&self, syncs: u64) -> Option<StalenessStats> {
        None
    }

    /// Analytic wire-traffic accounting for the simulated backend, given
    /// the number of sync points executed.
    fn wire(&self, syncs: u64) -> Option<WireStats> {
        None
    }

    /// Final parameters reported in [`History`].
    fn final_params(&mut self, learners: &[Learner]) -> Vec<f32> {
        learners[0].model.param_vector()
    }

    /// Drain the per-sync `(round, rank, k_eff, residual_norm)` telemetry
    /// an adaptive-compression strategy recorded; strategies without
    /// compression return nothing.
    fn sparsity_series(&mut self) -> Vec<SparsitySample> {
        Vec::new()
    }

    /// Per-tree-level wire profile accumulated by a sparse-aggregating
    /// strategy (empty for dense strategies).
    fn sparse_levels(&self) -> SparseLevelProfile {
        SparseLevelProfile::default()
    }

    /// One local minibatch (event-driven cadence; virtual time is the
    /// engine's job, so no step cost or jitter is passed). The default
    /// applies the gradient locally, exactly like a lockstep local step.
    fn on_local_step(
        &mut self,
        l: &mut Learner,
        id: usize,
        data: &Dataset,
        idx: &[usize],
        gamma: f32,
    ) {
        l.local_step(data, idx, gamma, 0.0, 1.0);
    }

    /// Sync learner `id` against the shared state
    /// ([`CommScope::Individual`] strategies only; collective-scope
    /// strategies aggregate through
    /// [`sync`](AggregationStrategy::sync) instead).
    fn event_sync(&mut self, l: &mut Learner, id: usize, gamma: f32) {}
}

/// Binomial-tree reduction of per-rank buffers in the exact gap-doubling
/// order of the wire collective (`sasgd-comm`'s `allreduce_tree`), so the
/// simulated sum is bitwise the threaded sum. Consumes the buffers and
/// returns the total.
pub(crate) fn tree_reduce(mut bufs: Vec<Vec<f32>>) -> Vec<f32> {
    let p = bufs.len();
    let mut gap = 1;
    while gap < p {
        let mut i = 0;
        while i + gap < p {
            let (lo, hi) = bufs.split_at_mut(i + gap);
            for (a, b) in lo[i].iter_mut().zip(&hi[0]) {
                *a += b;
            }
            i += 2 * gap;
        }
        gap *= 2;
    }
    bufs.swap_remove(0)
}

/// Squared L2 distance between two parameter vectors, folded sequentially
/// in f32 — the Local-SGD plateau signal, computed identically on both
/// backends so adaptive-T decisions replay exactly.
pub(crate) fn delta_sq_norm(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .fold(0.0f32, |acc, (x, y)| acc + (x - y) * (x - y))
}

/// Fractional collective epoch fed to the γ schedule by the event-driven
/// *collective* loops: nominal system-wide progress after `steps_done`
/// per-rank steps of `batch` samples across `p` ranks over an `n`-sample
/// dataset. Rank-independent by construction, so every rank resolves the
/// same γ for a given round on either backend.
pub(crate) fn event_gamma_epoch(steps_done: u64, batch: usize, p: usize, n: usize) -> f64 {
    (steps_done * batch as u64 * p as u64) as f64 / n as f64
}

/// Typed error from [`Executor::try_run`] — either a configuration
/// problem caught before any learner state exists, or a wire failure a
/// threaded run could not degrade around.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The requested cadence/backend combination has no execution path —
    /// e.g. forcing a parameter-server strategy to lockstep on the
    /// threaded backend, where no bulk-synchronous PS runner exists. The
    /// simulated backend executes every strategy under either cadence, so
    /// only explicit [`TrainConfig::cadence`] overrides on the threaded
    /// backend can produce this.
    UnsupportedCadence {
        /// Label of the offending strategy.
        label: String,
    },
    /// A communication operation failed in a way the run cannot survive
    /// (e.g. the recovery coordinator's own collective failed). Ranks that
    /// *can* degrade — evicted or orphaned non-coordinators — retire into
    /// [`History::retirements`](crate::history::History) instead of
    /// raising this.
    WireFailure {
        /// The rank whose operation failed.
        rank: usize,
        /// Global sync round (1-based) of the failing collective; `0` for
        /// failures outside the sync loop (e.g. the `x0` broadcast).
        round: u64,
        /// The underlying error's rendering.
        detail: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnsupportedCadence { label } => write!(
                f,
                "no execution path for strategy `{label}` at the requested cadence \
                 on the selected backend"
            ),
            EngineError::WireFailure {
                rank,
                round,
                detail,
            } => write!(
                f,
                "wire failure on rank {rank} at sync round {round}: {detail}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Build the strategy implementing `algo`.
pub(crate) fn strategy_for(algo: &crate::algorithms::Algorithm) -> Box<dyn AggregationStrategy> {
    use crate::algorithms::*;
    match *algo {
        Algorithm::Sequential => Box::new(sequential::SequentialStrategy::new()),
        Algorithm::Sasgd {
            p,
            t,
            gamma_p,
            compression,
        } => Box::new(sasgd::SasgdStrategy::new(p, t, gamma_p, compression)),
        Algorithm::HierarchicalSasgd {
            groups,
            per_group,
            t_local,
            t_global,
            gamma_p,
        } => Box::new(hierarchical::HierarchicalStrategy::new(
            groups, per_group, t_local, t_global, gamma_p,
        )),
        Algorithm::Downpour {
            p,
            t,
            staleness_gamma,
        } => Box::new(downpour::DownpourStrategy::new(p, t, staleness_gamma)),
        Algorithm::Eamsgd {
            p,
            t,
            moving_rate,
            momentum,
            staleness_gamma,
        } => Box::new(eamsgd::EamsgdStrategy::new(
            p,
            t,
            moving_rate,
            momentum,
            staleness_gamma,
        )),
        Algorithm::LocalSgd { p, schedule } => {
            Box::new(local_sgd::LocalSgdStrategy::new(p, schedule))
        }
        Algorithm::DelayedAvg { p, t } => Box::new(dasgd::DaSgdStrategy::new(p, t)),
        Algorithm::ModelAverageOnce { p } => Box::new(averaging::AveragingStrategy::new(p)),
    }
}

/// Which substrate executes the learner loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Virtual clocks over the `sasgd-simnet` cost model; deterministic
    /// and bit-reproducible under a seed.
    Simulated,
    /// One OS thread per learner over `sasgd-comm` collectives / parameter
    /// server; wall-clock timing and measured wire traffic.
    Threaded,
}

/// Runs any [`Algorithm`](crate::Algorithm) on a chosen [`Backend`]
/// through the unified engine.
///
/// ```
/// use sasgd_core::{Algorithm, Backend, Executor, TrainConfig};
/// use sasgd_data::cifar_like::{generate, CifarLikeConfig};
/// use sasgd_nn::models;
/// use sasgd_tensor::SeedRng;
///
/// let (train, test) = generate(&CifarLikeConfig::tiny(48, 16, 2));
/// let cfg = TrainConfig::new(1, 8, 0.05, 42);
/// let factory = || models::tiny_cnn(2, &mut SeedRng::new(5));
/// let algo = Algorithm::sasgd(2, 1, sasgd_core::GammaP::OverP);
/// let sim = Executor::new(Backend::Simulated).run(&factory, &train, &test, &algo, &cfg);
/// let thr = Executor::new(Backend::Threaded).run(&factory, &train, &test, &algo, &cfg);
/// assert_eq!(sim.final_params, thr.final_params);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    backend: Backend,
}

impl Executor {
    /// An executor for `backend`.
    pub fn new(backend: Backend) -> Self {
        Executor { backend }
    }

    /// The backend this executor drives.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Run `algo` on the executor's backend. The factory must produce
    /// identically initialized models on every call (close over a fixed
    /// seed); on the threaded backend it is called from learner threads.
    ///
    /// # Panics
    /// Panics on a misconfigured strategy or an unsurvivable wire failure,
    /// naming the backend, the algorithm, and — for wire failures — the
    /// failing rank and sync round; use [`Executor::try_run`] for the
    /// typed error.
    pub fn run(
        &self,
        factory: &(dyn Fn() -> Model + Sync),
        train_set: &Dataset,
        test_set: &Dataset,
        algo: &crate::algorithms::Algorithm,
        cfg: &TrainConfig,
    ) -> History {
        self.try_run(factory, train_set, test_set, algo, cfg)
            .unwrap_or_else(|e| panic!("{:?} backend running {algo:?}: {e}", self.backend))
    }

    /// [`Executor::run`] with the error typed: a cadence/backend
    /// combination with no execution path is a typed [`EngineError`]
    /// before any thread or learner state exists, and threaded wire
    /// failures surface instead of panicking.
    pub fn try_run(
        &self,
        factory: &(dyn Fn() -> Model + Sync),
        train_set: &Dataset,
        test_set: &Dataset,
        algo: &crate::algorithms::Algorithm,
        cfg: &TrainConfig,
    ) -> Result<History, EngineError> {
        let mut strategy = strategy_for(algo);
        let cadence = cfg.cadence.unwrap_or_else(|| strategy.cadence());
        Ok(match self.backend {
            Backend::Simulated => {
                let mut f = || factory();
                simulated::run(&mut *strategy, &mut f, train_set, test_set, cfg, cadence)
            }
            Backend::Threaded => threaded::run(factory, train_set, test_set, algo, cfg, cadence)?,
        })
    }
}

/// A per-learner infinite minibatch stream over that learner's data shard
/// (reshuffled every pass). Shared by the event-driven engine and the
/// threaded asynchronous backend.
pub(crate) struct BatchStream {
    pending: VecDeque<Vec<usize>>,
    indices: Vec<usize>,
    batch: usize,
    /// Completed shard passes.
    pub(crate) passes: u64,
}

impl BatchStream {
    pub(crate) fn new(indices: Vec<usize>, batch: usize) -> Self {
        assert!(!indices.is_empty(), "learner shard is empty (p > n?)");
        BatchStream {
            pending: VecDeque::new(),
            indices,
            batch,
            passes: 0,
        }
    }

    /// Next minibatch of indices, reshuffling when a pass completes.
    pub(crate) fn next(&mut self, rng: &mut sasgd_tensor::SeedRng) -> Vec<usize> {
        if self.pending.is_empty() {
            let mut order = self.indices.clone();
            rng.shuffle(&mut order);
            self.pending = order.chunks(self.batch).map(<[usize]>::to_vec).collect();
            self.passes += 1;
        }
        self.pending.pop_front().expect("refilled stream")
    }

    /// Passes completed (a pass counts once its last batch is consumed).
    pub(crate) fn completed_passes(&self) -> u64 {
        if self.pending.is_empty() {
            self.passes
        } else {
            self.passes.saturating_sub(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_tensor::SeedRng;

    #[test]
    fn batch_stream_passes_count_on_consumption() {
        let mut rng = SeedRng::new(1);
        let mut s = BatchStream::new((0..10).collect(), 4);
        assert_eq!(s.completed_passes(), 0);
        let mut seen = Vec::new();
        for _ in 0..3 {
            seen.extend(s.next(&mut rng)); // 4 + 4 + 2 consumes one pass
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(s.completed_passes(), 1);
        let _ = s.next(&mut rng);
        assert_eq!(s.completed_passes(), 1, "mid-pass");
    }
}

//! # sasgd-simnet
//!
//! Discrete-event cluster simulator: the stand-in for the paper's testbed
//! (an IBM Power8 host with 8 Tesla K80 GPUs behind a PCIe binary tree).
//!
//! The paper's timing results are functions of three quantities — compute
//! time per minibatch, bytes moved per gradient aggregation, and the path
//! those bytes take (wide GPU↔GPU links for allreduce vs the narrow
//! GPU↔host channel for a parameter server). This crate models exactly
//! those:
//!
//! * [`topology`] — platform descriptions with link latencies/bandwidths,
//!   calibrated to the paper's Fig 1 breakdown;
//! * [`cost`] — the α–β communication cost model and the MAC-driven
//!   compute model, including barrier straggler effects and host
//!   contention;
//! * [`event`] — a deterministic event queue and virtual clock for the
//!   event-driven trainer in `sasgd-core`;
//! * [`jitter`] — reproducible per-minibatch learner speed noise (the
//!   source of gradient staleness variation in asynchronous algorithms).

pub mod cost;
pub mod event;
pub mod jitter;
pub mod timeline;
pub mod topology;

pub use cost::{CommCost, CostModel};
pub use event::{EventQueue, RankQueue, VirtualTime};
pub use jitter::JitterModel;
pub use timeline::{render_gantt, trace_downpour, trace_sasgd, LearnerTrace, Phase, TimelineSpec};
pub use topology::Topology;

//! A (sharded) parameter server over threads.
//!
//! Downpour and EAMSGD aggregate through a central server: learners *push*
//! deltas asynchronously and *pull* fresh parameters. The paper's testbed
//! runs the sharded server on host CPUs while learners live on GPUs; here
//! each shard is a thread owning a contiguous slice of the parameter
//! vector.
//!
//! The server exposes exactly two operations:
//!
//! * `add(delta)` — `x ← x + delta` (fire-and-forget). Downpour pushes
//!   `−γ·g`; EAMSGD pushes the elastic difference `α(xᵢ − x̃)`.
//! * `pull()` — round-trip fetch of the current parameters.
//!
//! With more than one shard, a pull can observe some shards mid-update —
//! the *inconsistency of sharded servers* the paper calls out in §I/§III;
//! `test_sharded_pull_can_interleave` demonstrates it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Sender};

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct PsConfig {
    /// Number of shard threads (the paper uses a sharded server for speed).
    pub shards: usize,
}

impl Default for PsConfig {
    fn default() -> Self {
        PsConfig { shards: 1 }
    }
}

enum PsMsg {
    /// `x[segment] += delta`.
    Add(Vec<f32>),
    /// Reply with a copy of the segment.
    Pull(Sender<Vec<f32>>),
    /// Stop the shard thread.
    Shutdown,
}

/// Handle owning the shard threads; create clients with [`PsServer::client`].
pub struct PsServer {
    shard_txs: Vec<Sender<PsMsg>>,
    bounds: Vec<(usize, usize)>,
    handles: Vec<JoinHandle<Vec<f32>>>,
    traffic: Arc<PsTraffic>,
}

/// Elements moved through the server (both directions).
#[derive(Default)]
pub struct PsTraffic {
    /// Elements pushed by learners.
    pub pushed: AtomicU64,
    /// Elements pulled by learners.
    pub pulled: AtomicU64,
}

impl PsServer {
    /// Spawn shard threads seeded with `initial` parameters.
    ///
    /// # Panics
    /// Panics if `cfg.shards == 0` or exceeds the parameter count.
    pub fn spawn(initial: Vec<f32>, cfg: PsConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(
            cfg.shards <= initial.len().max(1),
            "more shards than parameters"
        );
        let m = initial.len();
        let base = m / cfg.shards;
        let extra = m % cfg.shards;
        let mut bounds = Vec::with_capacity(cfg.shards);
        let mut start = 0usize;
        for k in 0..cfg.shards {
            let len = base + usize::from(k < extra);
            bounds.push((start, start + len));
            start += len;
        }
        let mut shard_txs = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        for &(lo, hi) in &bounds {
            let mut segment = initial[lo..hi].to_vec();
            let (tx, rx) = unbounded::<PsMsg>();
            shard_txs.push(tx);
            handles.push(std::thread::spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        PsMsg::Add(delta) => {
                            for (x, d) in segment.iter_mut().zip(&delta) {
                                *x += d;
                            }
                        }
                        PsMsg::Pull(reply) => {
                            // A dead client is fine; drop the reply.
                            let _ = reply.send(segment.clone());
                        }
                        PsMsg::Shutdown => break,
                    }
                }
                segment
            }));
        }
        PsServer {
            shard_txs,
            bounds,
            handles,
            traffic: Arc::new(PsTraffic::default()),
        }
    }

    /// A client endpoint for one learner.
    pub fn client(&self) -> PsClient {
        PsClient {
            shard_txs: self.shard_txs.clone(),
            bounds: self.bounds.clone(),
            traffic: Arc::clone(&self.traffic),
        }
    }

    /// Shared traffic counters.
    pub fn traffic(&self) -> Arc<PsTraffic> {
        Arc::clone(&self.traffic)
    }

    /// Stop all shards and return the final parameter vector.
    pub fn shutdown(mut self) -> Vec<f32> {
        for tx in &self.shard_txs {
            let _ = tx.send(PsMsg::Shutdown);
        }
        let mut out = Vec::new();
        for h in self.handles.drain(..) {
            out.extend(h.join().expect("shard thread"));
        }
        out
    }
}

/// A learner's endpoint to the server. Cheap to clone per thread.
#[derive(Clone)]
pub struct PsClient {
    shard_txs: Vec<Sender<PsMsg>>,
    bounds: Vec<(usize, usize)>,
    traffic: Arc<PsTraffic>,
}

impl PsClient {
    /// Asynchronous `x ← x + delta` across all shards.
    ///
    /// # Panics
    /// Panics if `delta` length differs from the parameter count.
    pub fn add(&self, delta: &[f32]) {
        let m = self.bounds.last().map_or(0, |&(_, hi)| hi);
        assert_eq!(delta.len(), m, "delta length mismatch");
        self.traffic
            .pushed
            .fetch_add(delta.len() as u64, Ordering::Relaxed);
        for (tx, &(lo, hi)) in self.shard_txs.iter().zip(&self.bounds) {
            tx.send(PsMsg::Add(delta[lo..hi].to_vec()))
                .expect("shard hung up");
        }
    }

    /// Downpour-style gradient push: `x ← x − γ·g` applied server-side.
    pub fn push_gradient(&self, gamma: f32, grad: &[f32]) {
        let delta: Vec<f32> = grad.iter().map(|g| -gamma * g).collect();
        self.add(&delta);
    }

    /// Round-trip fetch of the full parameter vector.
    ///
    /// Shards answer independently: under concurrent `add`s the assembled
    /// vector may mix old and new shard states (sharded-server
    /// inconsistency).
    pub fn pull(&self) -> Vec<f32> {
        let m = self.bounds.last().map_or(0, |&(_, hi)| hi);
        let mut out = vec![0.0f32; m];
        let mut pending = Vec::with_capacity(self.shard_txs.len());
        for (tx, &(lo, hi)) in self.shard_txs.iter().zip(&self.bounds) {
            let (rtx, rrx) = bounded(1);
            tx.send(PsMsg::Pull(rtx)).expect("shard hung up");
            pending.push((rrx, lo, hi));
        }
        for (rrx, lo, hi) in pending {
            let seg = rrx.recv().expect("shard reply");
            out[lo..hi].copy_from_slice(&seg);
        }
        self.traffic.pulled.fetch_add(m as u64, Ordering::Relaxed);
        out
    }

    /// Parameter count served.
    pub fn param_len(&self) -> usize {
        self.bounds.last().map_or(0, |&(_, hi)| hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn push_pull_single_shard() {
        let ps = PsServer::spawn(vec![1.0, 2.0, 3.0], PsConfig { shards: 1 });
        let c = ps.client();
        c.push_gradient(0.5, &[2.0, 0.0, -2.0]);
        let x = c.pull();
        assert_eq!(x, vec![0.0, 2.0, 4.0]);
        assert_eq!(ps.shutdown(), vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn sharded_equals_unsharded_for_serial_ops() {
        let init: Vec<f32> = (0..10).map(|x| x as f32).collect();
        let delta: Vec<f32> = (0..10).map(|x| (x as f32) * 0.1).collect();
        let a = {
            let ps = PsServer::spawn(init.clone(), PsConfig { shards: 1 });
            let c = ps.client();
            c.add(&delta);
            let out = c.pull();
            ps.shutdown();
            out
        };
        let b = {
            let ps = PsServer::spawn(init, PsConfig { shards: 3 });
            let c = ps.client();
            c.add(&delta);
            let out = c.pull();
            ps.shutdown();
            out
        };
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_pushes_all_apply() {
        // Addition commutes, so any interleaving yields the same sum.
        let m = 100usize;
        let ps = PsServer::spawn(vec![0.0; m], PsConfig { shards: 4 });
        let p = 8;
        thread::scope(|s| {
            for _ in 0..p {
                let c = ps.client();
                s.spawn(move || {
                    for _ in 0..10 {
                        c.add(&vec![1.0; m]);
                    }
                });
            }
        });
        let c = ps.client();
        let x = c.pull();
        assert!(x.iter().all(|&v| v == (p * 10) as f32));
        ps.shutdown();
    }

    #[test]
    fn pull_while_pushing_is_live() {
        let m = 32usize;
        let ps = PsServer::spawn(vec![0.0; m], PsConfig { shards: 2 });
        let pusher = ps.client();
        let puller = ps.client();
        thread::scope(|s| {
            s.spawn(move || {
                for _ in 0..100 {
                    pusher.add(&vec![0.25; m]);
                }
            });
            s.spawn(move || {
                for _ in 0..20 {
                    let x = puller.pull();
                    // Values always multiples of 0.25 within [0, 25].
                    for v in x {
                        assert!((0.0..=25.0).contains(&v));
                    }
                }
            });
        });
        ps.shutdown();
    }

    #[test]
    fn traffic_counters() {
        let ps = PsServer::spawn(vec![0.0; 10], PsConfig { shards: 2 });
        let t = ps.traffic();
        let c = ps.client();
        c.add(&[1.0; 10]);
        let _ = c.pull();
        assert_eq!(t.pushed.load(Ordering::Relaxed), 10);
        assert_eq!(t.pulled.load(Ordering::Relaxed), 10);
        ps.shutdown();
    }

    #[test]
    fn empty_parameter_vector_is_ok() {
        let ps = PsServer::spawn(Vec::new(), PsConfig { shards: 1 });
        let c = ps.client();
        assert_eq!(c.pull(), Vec::<f32>::new());
        assert_eq!(c.param_len(), 0);
        ps.shutdown();
    }

    #[test]
    #[should_panic(expected = "delta length mismatch")]
    fn bad_delta_length_panics() {
        let ps = PsServer::spawn(vec![0.0; 4], PsConfig::default());
        let c = ps.client();
        c.add(&[1.0]);
    }
}

//! Golden-parameter regression tests for the execution engine.
//!
//! These checksums were generated from the pre-engine algorithm
//! implementations (PR 1 numerics). The unified execution engine must
//! reproduce every algorithm's `History::final_params` element-for-element,
//! so each case pins an FNV-1a hash over the exact bit patterns of the
//! final parameter vector, plus the first few raw bit patterns for
//! debuggability when a mismatch happens.
//!
//! To regenerate after an *intentional* numerics change:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test -q --test engine_golden -- --nocapture
//! ```

use sasgd::core::{train, Algorithm, Cadence, Compression, GammaP, TSchedule, TrainConfig};
use sasgd::data::cifar_like::{generate, CifarLikeConfig};
use sasgd::nn::models;
use sasgd::tensor::SeedRng;

/// FNV-1a over the little-endian bit patterns of the parameter vector.
fn checksum(params: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in params {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

struct Golden {
    name: &'static str,
    algo: Algorithm,
    /// FNV-1a checksum of `final_params` bit patterns.
    hash: u64,
    /// Bit patterns of the first four parameters.
    head: [u32; 4],
}

fn run_case(algo: &Algorithm) -> Vec<f32> {
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(96, 24, 3));
    let cfg = TrainConfig::new(2, 8, 0.05, 42);
    let mut factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
    let h = train(&mut factory, &train_set, &test_set, algo, &cfg);
    h.final_params
        .unwrap_or_else(|| panic!("{} must report final_params", algo.label()))
}

fn goldens() -> Vec<Golden> {
    vec![
        Golden {
            name: "sequential",
            algo: Algorithm::Sequential,
            hash: 0x30de_bab9_e597_608f,
            head: [0xbd5869a1, 0xbca6c58f, 0x3d722864, 0x3dea8c67],
        },
        Golden {
            name: "sasgd_p4_t2",
            algo: Algorithm::Sasgd {
                p: 4,
                t: 2,
                gamma_p: GammaP::OverP,
                compression: None,
            },
            hash: 0xae37_8f2c_1b9a_b357,
            head: [0xbd89768f, 0xbd090af7, 0x3d45c332, 0x3ddd0f3a],
        },
        Golden {
            name: "sasgd_p2_t2_topk25",
            algo: Algorithm::Sasgd {
                p: 2,
                t: 2,
                gamma_p: GammaP::OverP,
                compression: Some(Compression::TopK { ratio: 0.25 }),
            },
            hash: 0x7b15_802e_c791_7c13,
            head: [0xbd80551d, 0xbcea33ec, 0x3d54e1f0, 0x3de00d6f],
        },
        Golden {
            name: "sasgd_p2_t2_8bit",
            algo: Algorithm::Sasgd {
                p: 2,
                t: 2,
                gamma_p: GammaP::OverP,
                compression: Some(Compression::Uniform8Bit),
            },
            hash: 0x2488_0a77_8fed_7fd9,
            head: [0xbd801e8a, 0xbce70075, 0x3d5aae27, 0x3de30b8a],
        },
        Golden {
            name: "hier_2x2_tl2_tg2",
            algo: Algorithm::HierarchicalSasgd {
                groups: 2,
                per_group: 2,
                t_local: 2,
                t_global: 2,
                gamma_p: GammaP::OverP,
            },
            hash: 0x4e38_60ea_2b69_3f9b,
            head: [0xbd8748b5, 0xbcff1477, 0x3d4b8d82, 0x3ddc02e6],
        },
        Golden {
            name: "downpour_p3_t2",
            algo: Algorithm::Downpour {
                p: 3,
                t: 2,
                staleness_gamma: false,
            },
            hash: 0x03ee_1a78_95a1_be2d,
            head: [0xbd510305, 0xbc3b6204, 0x3d890491, 0x3dee1c64],
        },
        Golden {
            name: "eamsgd_p2_t2",
            algo: Algorithm::Eamsgd {
                p: 2,
                t: 2,
                moving_rate: None,
                momentum: 0.9,
                staleness_gamma: false,
            },
            hash: 0x3020_912e_d9ce_57a5,
            head: [0xbd29a092, 0x3c21a180, 0x3da3bc90, 0x3df81ef9],
        },
        Golden {
            name: "modelavg_p3",
            algo: Algorithm::ModelAverageOnce { p: 3 },
            hash: 0x0429_6e54_b807_3187,
            head: [0xbd863c75, 0xbd01cb0d, 0x3d4ae1d3, 0x3de05948],
        },
    ]
}

fn check(cases: Vec<Golden>, run: impl Fn(&Algorithm) -> Vec<f32>) {
    let print = std::env::var("GOLDEN_PRINT").is_ok();
    for g in cases {
        let params = run(&g.algo);
        let hash = checksum(&params);
        let head: Vec<u32> = params.iter().take(4).map(|v| v.to_bits()).collect();
        if print {
            println!(
                "GOLDEN {} hash: 0x{hash:016x}, head: [0x{:08x}, 0x{:08x}, 0x{:08x}, 0x{:08x}],",
                g.name, head[0], head[1], head[2], head[3]
            );
            continue;
        }
        assert_eq!(
            hash, g.hash,
            "{}: final_params checksum drifted (head bits {head:08x?}, \
             expected {:08x?})",
            g.name, g.head
        );
        for (i, (&got, &want)) in head.iter().zip(&g.head).enumerate() {
            assert_eq!(got, want, "{}: param[{i}] bits drifted", g.name);
        }
    }
}

#[test]
fn final_params_match_pre_engine_goldens() {
    check(goldens(), run_case);
}

/// The same workload under `Cadence::EventDriven` — pinning the
/// event-driven simulated engine's numerics, including the new lattice
/// strategies. Generated fresh for the event engine (the collective event
/// loop resolves one γ per round from nominal steps, so it is NOT expected
/// to match the lockstep hashes above).
fn event_goldens() -> Vec<Golden> {
    vec![
        Golden {
            name: "event_sasgd_p4_t2",
            algo: Algorithm::Sasgd {
                p: 4,
                t: 2,
                gamma_p: GammaP::OverP,
                compression: None,
            },
            hash: 0xae37_8f2c_1b9a_b357,
            head: [0xbd89768f, 0xbd090af7, 0x3d45c332, 0x3ddd0f3a],
        },
        Golden {
            name: "event_localsgd_p4_t2",
            algo: Algorithm::LocalSgd {
                p: 4,
                schedule: TSchedule::Fixed { t: 2 },
            },
            hash: 0xd0b2_a679_9476_b628,
            head: [0xbd897690, 0xbd090af8, 0x3d45c332, 0x3ddd0f3c],
        },
        Golden {
            name: "event_localsgd_p4_adaptive",
            algo: Algorithm::LocalSgd {
                p: 4,
                schedule: TSchedule::AdaptivePlateau {
                    t0: 1,
                    t_max: 4,
                    patience: 1,
                    rel_improve: 0.2,
                },
            },
            hash: 0x8f97_0a1e_8807_0f72,
            head: [0xbd847bac, 0xbcfe8cc5, 0x3d4c984e, 0x3de11ffa],
        },
        Golden {
            name: "event_dasgd_p4_t2",
            algo: Algorithm::DelayedAvg { p: 4, t: 2 },
            hash: 0x0f4e_6dce_a86e_4211,
            head: [0xbd8930d2, 0xbd07f678, 0x3d446b36, 0x3ddd33df],
        },
        Golden {
            name: "event_modelavg_p3",
            algo: Algorithm::ModelAverageOnce { p: 3 },
            hash: 0x0429_6e54_b807_3187,
            head: [0xbd863c75, 0xbd01cb0d, 0x3d4ae1d3, 0x3de05948],
        },
    ]
}

#[test]
fn event_driven_final_params_are_pinned() {
    check(event_goldens(), |algo| {
        let (train_set, test_set) = generate(&CifarLikeConfig::tiny(96, 24, 3));
        let mut cfg = TrainConfig::new(2, 8, 0.05, 42);
        cfg.cadence = Some(Cadence::EventDriven);
        let mut factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = train(&mut factory, &train_set, &test_set, algo, &cfg);
        h.final_params
            .unwrap_or_else(|| panic!("{} must report final_params", algo.label()))
    });
}

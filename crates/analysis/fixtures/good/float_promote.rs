// virtual-path: crates/core/src/fixture_cast_ok.rs
// GOOD: int→float promotions and justified conversions only.

pub fn inv_area(k: usize) -> f32 {
    1.0 / (k * k) as f32
}

pub fn elements(rows: usize, cols: usize) -> u64 {
    (rows * cols) as u64
}

pub fn keep(m: usize, ratio: f64) -> usize {
    (m as f64 * ratio).ceil() as usize // lint:allow(float-cast): ceil of a ratio in [0,1] times m fits usize exactly
}

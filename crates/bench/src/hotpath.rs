//! Full forward+backward hot-path harness: the PR-sized view that
//! `kernels.rs` is too narrow for. Times one training step (fwd + bwd, no
//! optimizer) of the Table I CNN and the Table II NLC network at batch 32
//! and 128, comparing
//!
//! * **before** — the pre-optimization path: per-image `*_ref` convolution
//!   kernels and a fresh workspace every step (every scratch buffer heap-
//!   allocated), and
//! * **after** — the batched im2col/GEMM path with one workspace arena
//!   persisted across steps.
//!
//! Both variants start from bit-identical parameters and consume identical
//! per-step RNG streams, so the first-step loss must agree bit for bit —
//! the harness records that check next to every timing. Steady-state heap
//! allocation counts come from the counting global allocator in
//! [`crate::alloc`] (installed by the `repro` binary). Results land in
//! `BENCH_hotpath.json`.
//!
//! ## Roofline sweep
//!
//! Alongside the model-level suite the harness sweeps the raw GEMM
//! kernels — NN / NT / TN at model-representative shapes — across every
//! feature leg this build can run: `serial` (the PR 3 scalar path, the
//! baseline every speedup is quoted against), `parallel` (same kernels,
//! banded over a pool of `max(2, cores)` threads), `simd` (the packed
//! register-blocked tolerance-mode kernels, 1 thread) and
//! `simd_parallel` (packed + row-band parallelism). Each cell reports
//! GFLOP/s; the pool is *explicitly* sized to at least 2 threads for the
//! parallel legs and the [`parallel::par_regions_taken`] counter is
//! recorded, so the artifact proves intra-op threads actually engaged
//! instead of silently serializing on 1-core CI. Tile plans chosen by the
//! deterministic autotuner during the packed legs are serialized into the
//! artifact ([`sasgd_tensor::tune::observed`]).

use std::time::Instant;

use sasgd_nn::layers::{
    Dropout, Flatten, GlobalMaxOverTime, Linear, MaxPool2d, Relu, Tanh, TemporalConv1d,
    TemporalMaxPool,
};
use sasgd_nn::{init, layers::Conv2d, parallel, Ctx, Layer, Model};
use sasgd_tensor::conv::{conv2d_backward_ref, conv2d_forward_ref, Conv2dSpec};
use sasgd_tensor::{linalg, SeedRng, Tensor, Workspace};

use crate::alloc;
use crate::figures::Artifact;

/// Timing reps per variant (plus one warm-up step that also primes the
/// arena for the "after" path).
const REPS: usize = 3;
/// Steps averaged for the steady-state allocation count.
const ALLOC_STEPS: u64 = 2;

/// Model-representative GEMM shapes for the roofline sweep:
/// `(name, m, k, n)` as logical `A: [m,k] · B: [k,n]`.
const ROOFLINE_SHAPES: &[(&str, usize, usize, usize)] = &[
    // Tall-skinny im2col product (CNN conv2 at batch 32, width/2).
    ("conv_im2col", 2048, 288, 64),
    // NLC fully connected block at batch 128.
    ("nlc_linear", 128, 512, 512),
    // Balanced reference point.
    ("square256", 256, 256, 256),
];

/// One roofline row: a kernel at a shape, with one `(leg, ms, GFLOP/s)`
/// cell per feature leg this build could run.
pub struct RooflineRow {
    /// GEMM kernel: `nn`, `nt`, or `tn`.
    pub kernel: &'static str,
    /// Shape label from the fixed `ROOFLINE_SHAPES` sweep.
    pub shape: &'static str,
    /// Logical GEMM extents.
    pub m: usize,
    /// Reduction extent.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// `(leg name, best-of-REPS ms, GFLOP/s)` per leg, in sweep order.
    pub legs: Vec<(&'static str, f64, f64)>,
}

/// Results of the roofline sweep plus the evidence that parallel and
/// packed paths genuinely ran.
pub struct Roofline {
    /// One row per kernel × shape.
    pub rows: Vec<RooflineRow>,
    /// [`parallel::par_regions_taken`] during the sweep — `> 0` proves
    /// the pool engaged (the parallel legs force ≥ 2 threads even on a
    /// 1-core machine).
    pub parallel_path_taken: u64,
    /// Tile plans the deterministic autotuner chose during the packed
    /// legs (empty without the `simd` feature).
    pub tiles: Vec<sasgd_tensor::tune::ObservedPlan>,
}

/// Transpose a row-major `rows`×`cols` matrix (operand prep, unmeasured).
fn transpose(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut t = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            t[c * rows + r] = x[r * cols + c];
        }
    }
    t
}

/// Sweep the GEMM kernels across shapes and feature legs. Restores the
/// requested thread count before returning.
pub fn run_roofline() -> Roofline {
    let initial_threads = parallel::requested_threads();
    let cores = std::thread::available_parallelism().map_or(1, |v| v.get());
    // At least 2 pool threads for the parallel legs: oversubscription is
    // deterministic-safe, and it keeps the "did threads engage" check
    // meaningful on 1-core CI runners.
    let par_threads = cores.max(2);
    let mut legs: Vec<(&'static str, bool, usize)> = vec![("serial", false, 1)];
    if parallel::parallel_enabled() {
        legs.push(("parallel", false, par_threads));
    }
    if cfg!(feature = "simd") {
        legs.push(("simd", true, 1));
        if parallel::parallel_enabled() {
            legs.push(("simd_parallel", true, par_threads));
        }
    }

    sasgd_tensor::tune::reset_observed();
    parallel::reset_par_regions();
    let mut rng = SeedRng::new(0xF00F);
    let mut ws = Workspace::new();
    let mut rows = Vec::new();
    for &(shape, m, k, n) in ROOFLINE_SHAPES {
        let a = rng.normal_tensor(&[m, k], 1.0).into_vec();
        let b = rng.normal_tensor(&[k, n], 1.0).into_vec();
        let bt = transpose(&b, k, n); // physical [n, k] for the NT kernel
        let at = transpose(&a, m, k); // physical [k, m] for the TN kernel
        let mut out = vec![0.0f32; m * n];
        for kernel in ["nn", "nt", "tn"] {
            let mut cells = Vec::new();
            for &(leg, packed, threads) in &legs {
                parallel::configure_threads(threads);
                let mut best = f64::INFINITY;
                for _ in 0..REPS {
                    let t0 = Instant::now();
                    match (kernel, packed) {
                        ("nn", false) => linalg::matmul_into_auto(&mut out, &a, &b, m, k, n),
                        ("nn", true) => {
                            linalg::matmul_packed_into_ws(&mut out, &a, &b, m, k, n, &mut ws)
                        }
                        ("nt", false) => linalg::matmul_nt_into_auto(&mut out, &a, &bt, m, k, n),
                        ("nt", true) => {
                            linalg::matmul_nt_packed_into_ws(&mut out, &a, &bt, m, k, n, &mut ws)
                        }
                        ("tn", false) => linalg::matmul_tn_into_auto(&mut out, &at, &b, k, m, n),
                        ("tn", true) => {
                            linalg::matmul_tn_packed_into_ws(&mut out, &at, &b, k, m, n, &mut ws)
                        }
                        _ => unreachable!("kernel/leg grid is fixed"),
                    }
                    best = best.min(t0.elapsed().as_secs_f64());
                }
                let gflops = 2.0 * (m * k * n) as f64 / best / 1e9;
                cells.push((leg, best * 1e3, gflops));
            }
            rows.push(RooflineRow {
                kernel,
                shape,
                m,
                k,
                n,
                legs: cells,
            });
        }
    }
    let parallel_path_taken = parallel::par_regions_taken();
    parallel::configure_threads(initial_threads);
    Roofline {
        rows,
        parallel_path_taken,
        tiles: sasgd_tensor::tune::observed(),
    }
}

/// One benchmarked configuration: model × batch size, before/after times
/// and per-step steady-state allocation counts.
pub struct HotpathTiming {
    /// Configuration identifier (e.g. `table1_cnn_b32`).
    pub name: String,
    /// Best-of-`REPS` fwd+bwd step time on the pre-optimization path, ms.
    pub before_ms: f64,
    /// Best-of-`REPS` fwd+bwd step time on the batched/arena path, ms.
    pub after_ms: f64,
    /// Steady-state heap allocations per step, pre-optimization path.
    pub before_allocs: u64,
    /// Steady-state heap allocations per step, batched/arena path.
    pub after_allocs: u64,
    /// First-step losses of the two paths agreed bit for bit.
    pub loss_bitwise_equal: bool,
}

/// Pre-PR convolution layer: per-image `*_ref` kernels, every intermediate
/// freshly heap-allocated. Draws its parameters from the RNG in exactly
/// the order [`Conv2d::new`] does, so a model built from `Conv2dRef`
/// layers is bit-identical to its `Conv2d` twin.
struct Conv2dRef {
    spec: Conv2dSpec,
    weight: Tensor,
    bias: Vec<f32>,
    dweight: Tensor,
    dbias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Conv2dRef {
    fn new(
        ci: usize,
        co: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
        rng: &mut SeedRng,
    ) -> Self {
        let spec = Conv2dSpec {
            ci,
            co,
            kh,
            kw,
            stride,
            pad,
        };
        let fan_in = ci * kh * kw;
        Conv2dRef {
            spec,
            weight: init::torch_uniform(rng, &[co, fan_in], fan_in),
            bias: init::torch_uniform_bias(rng, co, fan_in),
            dweight: Tensor::zeros(&[co, fan_in]),
            dbias: vec![0.0; co],
            cached_input: None,
        }
    }
}

impl Layer for Conv2dRef {
    fn name(&self) -> &'static str {
        "Conv2dRef"
    }

    fn forward(&mut self, input: Tensor, ctx: &mut Ctx) -> Tensor {
        let out = conv2d_forward_ref(&input, &self.weight, &self.bias, &self.spec);
        if ctx.training {
            self.cached_input = Some(input);
        }
        out
    }

    fn backward(&mut self, grad_out: Tensor, _ctx: &mut Ctx) -> Tensor {
        let input = self.cached_input.take().expect("backward without forward");
        let grads = conv2d_backward_ref(&input, &self.weight, &grad_out, &self.spec);
        self.dweight.add_assign(&grads.dweight);
        for (a, b) in self.dbias.iter_mut().zip(&grads.dbias) {
            *a += b;
        }
        grads.dinput
    }

    fn param_len(&self) -> usize {
        self.weight.numel() + self.bias.len()
    }

    fn read_params(&self, out: &mut [f32]) {
        let w = self.weight.numel();
        out[..w].copy_from_slice(self.weight.as_slice());
        out[w..].copy_from_slice(&self.bias);
    }

    fn write_params(&mut self, src: &[f32]) {
        let w = self.weight.numel();
        self.weight.as_mut_slice().copy_from_slice(&src[..w]);
        self.bias.copy_from_slice(&src[w..]);
    }

    fn read_grads(&self, out: &mut [f32]) {
        let w = self.dweight.numel();
        out[..w].copy_from_slice(self.dweight.as_slice());
        out[w..].copy_from_slice(&self.dbias);
    }

    fn zero_grads(&mut self) {
        self.dweight.zero_();
        self.dbias.iter_mut().for_each(|x| *x = 0.0);
    }

    fn out_shape(&self, in_dims: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.spec.out_hw(in_dims[1], in_dims[2]);
        vec![self.spec.co, oh, ow]
    }

    fn macs(&self, in_dims: &[usize]) -> u64 {
        self.spec.forward_macs(in_dims[1], in_dims[2])
    }
}

/// Table I CNN (width divided by `divisor`), with either the current
/// [`Conv2d`] layers or the pre-PR [`Conv2dRef`] ones. RNG draw order is
/// identical in both variants.
fn cnn_model(divisor: usize, reference: bool, rng: &mut SeedRng) -> Model {
    let c1 = 64 / divisor;
    let c2 = 128 / divisor;
    let c3 = 256 / divisor;
    let c4 = 128 / divisor;
    let conv = |ci, co, k, s, p, rng: &mut SeedRng| -> Box<dyn Layer> {
        if reference {
            Box::new(Conv2dRef::new(ci, co, k, k, s, p, rng))
        } else {
            Box::new(Conv2d::new(ci, co, k, k, s, p, rng))
        }
    };
    Model::new(
        vec![
            conv(3, c1, 5, 1, 2, rng),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Dropout::new(0.5)),
            conv(c1, c2, 3, 1, 1, rng),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Dropout::new(0.5)),
            conv(c2, c3, 3, 1, 1, rng),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Dropout::new(0.5)),
            conv(c3, c4, 2, 1, 0, rng),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Dropout::new(0.5)),
            Box::new(Flatten::new()),
            Box::new(Linear::new(c4, 10, rng)),
        ],
        &[3, 32, 32],
    )
}

/// Table II NLC network (its layers have no `*_ref` twin: before/after
/// differ only in arena reuse).
fn nlc_model(seq_len: usize, rng: &mut SeedRng) -> Model {
    Model::new(
        vec![
            Box::new(Linear::new(100, 200, rng)),
            Box::new(Tanh::new()),
            Box::new(TemporalConv1d::new(200, 1000, 2, rng)),
            Box::new(TemporalMaxPool::new(2)),
            Box::new(Tanh::new()),
            Box::new(GlobalMaxOverTime::new()),
            Box::new(Linear::new(1000, 1000, rng)),
            Box::new(Tanh::new()),
            Box::new(Linear::new(1000, 311, rng)),
        ],
        &[seq_len, 100],
    )
}

/// One training step (zero grads, forward+loss, backward). `ws` carries a
/// persistent arena across steps; `None` means a fresh workspace (and so
/// fresh heap allocations) every step — the pre-PR behaviour.
fn step(model: &mut Model, x: &Tensor, y: &[usize], seed: u64, ws: Option<&mut Workspace>) -> f32 {
    let mut ctx = Ctx::train(SeedRng::new(seed));
    if let Some(arena) = ws {
        ctx.ws = std::mem::take(arena);
        model.zero_grads();
        let out = model.forward_loss(x, y, &mut ctx);
        model.backward(&mut ctx);
        *arena = std::mem::take(&mut ctx.ws);
        out.loss
    } else {
        model.zero_grads();
        let out = model.forward_loss(x, y, &mut ctx);
        model.backward(&mut ctx);
        out.loss
    }
}

/// Benchmark one model/batch configuration: warm up, best-of-[`REPS`]
/// step times, then steady-state allocation counts over [`ALLOC_STEPS`].
fn run_case(
    name: &str,
    mut before: Model,
    mut after: Model,
    x: &Tensor,
    y: &[usize],
) -> HotpathTiming {
    // Identical per-step seeds on both paths: dropout masks match, so the
    // batched/arena path must reproduce the reference loss bit for bit.
    let before_loss = step(&mut before, x, y, 0, None);
    let mut ws = Workspace::new();
    let after_loss = step(&mut after, x, y, 0, Some(&mut ws));
    let loss_bitwise_equal = before_loss.to_bits() == after_loss.to_bits();

    let mut before_ms = f64::INFINITY;
    let mut after_ms = f64::INFINITY;
    for rep in 0..REPS {
        let seed = 1 + rep as u64;
        let t0 = Instant::now();
        step(&mut before, x, y, seed, None);
        before_ms = before_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        step(&mut after, x, y, seed, Some(&mut ws));
        after_ms = after_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    alloc::reset();
    for s in 0..ALLOC_STEPS {
        step(&mut before, x, y, 100 + s, None);
    }
    let before_allocs = alloc::allocs() / ALLOC_STEPS;
    alloc::reset();
    for s in 0..ALLOC_STEPS {
        step(&mut after, x, y, 100 + s, Some(&mut ws));
    }
    let after_allocs = alloc::allocs() / ALLOC_STEPS;

    HotpathTiming {
        name: name.to_string(),
        before_ms,
        after_ms,
        before_allocs,
        after_allocs,
        loss_bitwise_equal,
    }
}

/// Run the suite: Table I CNN and the NLC network at batch 32 and 128.
pub fn run_suite() -> Vec<HotpathTiming> {
    let mut rng = SeedRng::new(0xB0);
    let mut out = Vec::new();
    for &batch in &[32usize, 128] {
        let x = rng.normal_tensor(&[batch, 3, 32, 32], 1.0);
        let y: Vec<usize> = (0..batch).map(|i| i % 10).collect();
        out.push(run_case(
            &format!("table1_cnn_b{batch}"),
            cnn_model(1, true, &mut SeedRng::new(7)),
            cnn_model(1, false, &mut SeedRng::new(7)),
            &x,
            &y,
        ));
    }
    let seq = 20;
    for &batch in &[32usize, 128] {
        let x = rng.normal_tensor(&[batch, seq, 100], 1.0);
        let y: Vec<usize> = (0..batch).map(|i| i % 311).collect();
        out.push(run_case(
            &format!("nlc_b{batch}"),
            nlc_model(seq, &mut SeedRng::new(9)),
            nlc_model(seq, &mut SeedRng::new(9)),
            &x,
            &y,
        ));
    }
    out
}

/// Hand-rolled JSON (the workspace builds offline, with no serde).
pub fn to_json(timings: &[HotpathTiming], roof: &Roofline) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"parallel_feature\": {},\n  \"simd_feature\": {},\n  \
         \"pool_threads\": {},\n  \
         \"par_threshold\": {},\n  \"alloc_counting\": {},\n  \
         \"parallel_path_taken\": {},\n  \"cases\": [\n",
        parallel::parallel_enabled(),
        cfg!(feature = "simd"),
        parallel::threads(),
        linalg::par_threshold(),
        alloc::counting(),
        roof.parallel_path_taken,
    ));
    for (i, t) in timings.iter().enumerate() {
        let alloc_drop = if t.after_allocs > 0 {
            t.before_allocs as f64 / t.after_allocs as f64
        } else {
            0.0
        };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"before_ms\": {:.3}, \"after_ms\": {:.3}, \
             \"speedup\": {:.3}, \"before_allocs\": {}, \"after_allocs\": {}, \
             \"alloc_drop\": {:.1}, \"loss_bitwise_equal\": {}}}{}\n",
            t.name,
            t.before_ms,
            t.after_ms,
            t.before_ms / t.after_ms,
            t.before_allocs,
            t.after_allocs,
            alloc_drop,
            t.loss_bitwise_equal,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"roofline\": [\n");
    for (i, r) in roof.rows.iter().enumerate() {
        let serial_ms = r
            .legs
            .iter()
            .find(|(l, _, _)| *l == "serial")
            .map_or(f64::NAN, |&(_, ms, _)| ms);
        let best_ms = r
            .legs
            .iter()
            .map(|&(_, ms, _)| ms)
            .fold(f64::INFINITY, f64::min);
        let mut legjson = String::new();
        for (j, (leg, ms, gflops)) in r.legs.iter().enumerate() {
            legjson.push_str(&format!(
                "\"{leg}\": {{\"ms\": {ms:.4}, \"gflops\": {gflops:.3}}}{}",
                if j + 1 < r.legs.len() { ", " } else { "" }
            ));
        }
        s.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"best_over_serial\": {:.3}, \"legs\": {{{legjson}}}}}{}\n",
            r.kernel,
            r.shape,
            r.m,
            r.k,
            r.n,
            serial_ms / best_ms,
            if i + 1 < roof.rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"tiles\": [\n");
    for (i, t) in roof.tiles.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"class\": [{}, {}, {}], \"mr\": {}, \"nr\": {}, \"kc\": {}, \"nc\": {}, \
             \"example\": [{}, {}, {}], \"hits\": {}}}{}\n",
            t.class.0,
            t.class.1,
            t.class.2,
            t.plan.mr,
            t.plan.nr,
            t.plan.kc,
            t.plan.nc,
            t.example.0,
            t.example.1,
            t.example.2,
            t.hits,
            if i + 1 < roof.tiles.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The `hotpath` repro target: run the suite and the roofline sweep, emit
/// a report plus `BENCH_hotpath.json`.
pub fn hotpath() -> Artifact {
    let timings = run_suite();
    let roof = run_roofline();
    let mut report = String::from(
        "Hot-path fwd+bwd step timings: per-image ref kernels + fresh buffers \
         (before) vs batched im2col/GEMM + workspace arena (after)\n\n",
    );
    report.push_str(&format!(
        "{:<16} {:>10} {:>10} {:>8} {:>14} {:>13}  bitwise\n",
        "case", "before ms", "after ms", "speedup", "allocs before", "allocs after"
    ));
    for t in &timings {
        report.push_str(&format!(
            "{:<16} {:>10.3} {:>10.3} {:>7.2}x {:>14} {:>13}  {}\n",
            t.name,
            t.before_ms,
            t.after_ms,
            t.before_ms / t.after_ms,
            t.before_allocs,
            t.after_allocs,
            if t.loss_bitwise_equal {
                "ok"
            } else {
                "DIVERGED"
            }
        ));
    }
    if !alloc::counting() {
        report.push_str("\n(counting allocator not installed: alloc columns are zero)\n");
    }
    report.push_str(&format!(
        "\npar_threshold = {} rows ({} pool thread(s))\n",
        linalg::par_threshold(),
        parallel::threads()
    ));

    report.push_str("\nRoofline: GFLOP/s per kernel x shape x feature leg\n");
    report.push_str("(serial = PR 3 scalar baseline; parallel legs force >= 2 pool threads)\n\n");
    let leg_names: Vec<&str> = roof
        .rows
        .first()
        .map(|r| r.legs.iter().map(|&(l, _, _)| l).collect())
        .unwrap_or_default();
    report.push_str(&format!("{:<8} {:<12} {:<16}", "kernel", "shape", "m*k*n"));
    for l in &leg_names {
        report.push_str(&format!(" {l:>14}"));
    }
    report.push_str(&format!(" {:>12}\n", "best/serial"));
    for r in &roof.rows {
        report.push_str(&format!(
            "{:<8} {:<12} {:<16}",
            r.kernel,
            r.shape,
            format!("{}x{}x{}", r.m, r.k, r.n)
        ));
        let serial_ms = r
            .legs
            .iter()
            .find(|(l, _, _)| *l == "serial")
            .map_or(f64::NAN, |&(_, ms, _)| ms);
        let mut best_ms = f64::INFINITY;
        for &(_, ms, gflops) in &r.legs {
            report.push_str(&format!(" {gflops:>14.3}"));
            best_ms = best_ms.min(ms);
        }
        report.push_str(&format!(" {:>11.2}x\n", serial_ms / best_ms));
    }
    report.push_str(&format!(
        "\nparallel_path_taken = {} region(s) fanned out over the pool\n",
        roof.parallel_path_taken
    ));
    if roof.tiles.is_empty() {
        report.push_str("autotuned tiles: none (simd legs not built in)\n");
    } else {
        report.push_str("autotuned tiles (deterministic, per log2 shape class):\n");
        for t in &roof.tiles {
            report.push_str(&format!(
                "  class ({}, {}, {}): MRxNR = {}x{}, KC = {}, NC = {} \
                 (first {}x{}x{}, {} dispatches)\n",
                t.class.0,
                t.class.1,
                t.class.2,
                t.plan.mr,
                t.plan.nr,
                t.plan.kc,
                t.plan.nc,
                t.example.0,
                t.example.1,
                t.example.2,
                t.hits
            ));
        }
    }
    Artifact {
        name: "hotpath".to_string(),
        report,
        csvs: vec![("BENCH_hotpath.json".to_string(), to_json(&timings, &roof))],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_and_batched_cnn_agree_bitwise_on_small_model() {
        let mut before = cnn_model(8, true, &mut SeedRng::new(3));
        let mut after = cnn_model(8, false, &mut SeedRng::new(3));
        assert_eq!(before.param_vector(), after.param_vector());
        let mut rng = SeedRng::new(4);
        let x = rng.normal_tensor(&[2, 3, 32, 32], 1.0);
        let y = [0usize, 1];
        let mut ws = Workspace::new();
        for s in 0..2u64 {
            let lb = step(&mut before, &x, &y, s, None);
            let la = step(&mut after, &x, &y, s, Some(&mut ws));
            assert_eq!(lb.to_bits(), la.to_bits(), "step {s} loss diverged");
        }
        // Gradients too, not just the loss.
        let gb = before.grad_vector();
        let ga = after.grad_vector();
        for (i, (a, b)) in gb.iter().zip(&ga).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "grad[{i}] diverged");
        }
    }

    #[test]
    fn json_is_well_formed() {
        let t = vec![HotpathTiming {
            name: "t".into(),
            before_ms: 3.0,
            after_ms: 1.5,
            before_allocs: 500,
            after_allocs: 25,
            loss_bitwise_equal: true,
        }];
        let roof = Roofline {
            rows: vec![RooflineRow {
                kernel: "nn",
                shape: "square256",
                m: 256,
                k: 256,
                n: 256,
                legs: vec![("serial", 4.0, 8.4), ("parallel", 2.0, 16.8)],
            }],
            parallel_path_taken: 3,
            tiles: vec![sasgd_tensor::tune::ObservedPlan {
                class: (8, 8, 8),
                plan: sasgd_tensor::tune::plan_for(256, 256, 256),
                example: (256, 256, 256),
                hits: 6,
            }],
        };
        let j = to_json(&t, &roof);
        assert!(j.contains("\"speedup\": 2.000"));
        assert!(j.contains("\"alloc_drop\": 20.0"));
        assert!(j.contains("\"par_threshold\""));
        assert!(j.contains("\"parallel_path_taken\": 3"));
        assert!(j.contains("\"roofline\""));
        assert!(j.contains("\"best_over_serial\": 2.000"));
        assert!(j.contains("\"tiles\""));
        assert!(j.contains("\"mr\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn roofline_sweeps_every_leg_this_build_carries() {
        let roof = run_roofline();
        // 3 kernels x 3 shapes, identical leg lists.
        assert_eq!(roof.rows.len(), ROOFLINE_SHAPES.len() * 3);
        let want_legs = 1
            + usize::from(parallel::parallel_enabled())
            + usize::from(cfg!(feature = "simd"))
            + usize::from(cfg!(feature = "simd") && parallel::parallel_enabled());
        for r in &roof.rows {
            assert_eq!(r.legs.len(), want_legs, "{}/{}", r.kernel, r.shape);
            assert_eq!(r.legs[0].0, "serial");
            for &(leg, ms, gflops) in &r.legs {
                assert!(ms > 0.0 && gflops > 0.0, "{leg} cell not measured");
            }
        }
        // Any parallel-capable build must prove its pool engaged.
        if parallel::parallel_enabled() {
            assert!(roof.parallel_path_taken > 0, "pool never engaged");
        }
        // Packed legs must have recorded deterministic tile plans.
        if cfg!(feature = "simd") {
            assert!(!roof.tiles.is_empty(), "packed legs recorded no tiles");
        }
    }
}

//! Matrix kernels: the workhorses behind the fully connected and
//! (via im2col) convolutional layers.
//!
//! Each GEMM has a sequential path and a parallel path (`*_par`) that
//! splits work over blocks of **independent output rows**; `*_auto` picks
//! between them by output size. Within one output element the reduction
//! always runs in ascending inner-index order with the same zero-skip, so
//! the serial, blocked-serial, and parallel kernels produce bitwise
//! identical results — the property the SASGD determinism contract needs,
//! and what the proptests in `tests/proptests.rs` check.
//!
//! The sequential GEMM is cache-blocked: `MR` rows of `A` share each
//! streamed row of `B`, and columns are walked in `NC`-wide panels so the
//! active slice of `B` stays cache-resident. Blocking changes only the
//! *visit* order of (row, column-panel) pairs, never the per-element
//! accumulation order.
//!
//! Inner loops are panel-vectorized: the axpy kernels walk the column
//! panel in fixed 8-wide chunks (plus a scalar tail) and the dot-product
//! kernel computes 8 output columns with 8 independent accumulators.
//! Vectorizing across *columns* (independent output elements) never
//! reorders any single element's reduction, so this is bitwise-invisible;
//! it exists purely to break the FP-add latency chain that a one-column
//! scalar loop serializes on.
//!
//! Every GEMM also has a `*_into` entry point taking a caller-provided
//! output slice, so hot-path callers can feed buffers from a
//! [`Workspace`] instead of allocating per call.
//!
//! ## Two kernel families: bitwise oracle vs packed tolerance mode
//!
//! The kernels above — [`matmul_into_auto`] and friends, built on
//! `mm_rows_blocked` / `nt_rows` / `tn_row` / `axpy_row` — are the
//! **reference family**: per-element fold order is frozen (ascending inner
//! index, zero-skip `if av == 0.0 { continue; }` in the axpy-style
//! kernels), so serial, blocked, and banded-parallel runs are bitwise
//! identical and the engine-golden checksums stay stable. The **packed
//! family** ([`pack`] / [`microkernel`](crate::microkernel) /
//! [`tune`](crate::tune), reached through the [`gemm_nn_ws`]-style
//! dispatchers) reassociates the reduction into `KC`-deep block sums and
//! drops the zero-skip.
//!
//! The two families **cannot** be bitwise-equal, by design:
//!
//! * skipping `av == 0.0` is not an IEEE no-op — `x + 0.0 * b` flips
//!   `-0.0` to `+0.0` and would turn `0.0 · ±inf` into NaN — so the skip
//!   is itself a semantic choice the golden checksums froze in;
//! * a data-dependent branch in the innermost loop serializes the 8-lane
//!   FMA chains the packed microkernel exists for, so the packed path
//!   drops it and computes every lane unconditionally;
//! * block-sum accumulation (`Σ_pc (Σ_{l∈pc} a·b)`) reassociates the fold.
//!
//! The packed path is therefore **tolerance mode** and strictly opt-in:
//! even a `--features simd` build keeps the reference family until
//! [`set_packed_gemm`]`(true)` is called, so default builds and default
//! runs stay bitwise. For finite inputs both folds obey the standard
//! `γ_k` rounding bound, so the divergence is bounded by
//! `|packed − ref| ≤ 2·k·ε · Σ_l |a_il|·|b_lj|` with `ε = 2⁻²⁴`;
//! `tests/packed.rs` asserts a 4·k·ε slack version of this bound across
//! random ragged shapes. Within itself the packed path is still
//! deterministic at any thread count (bands only partition output rows).

use crate::pack::{self, MatRef};
use crate::parallel;
use crate::tensor::Tensor;
use crate::workspace::Workspace;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Minimum output rows **per pool thread** before the `_auto` kernels take
/// the parallel path. The old fixed threshold (64 rows) was tuned for an
/// 8-thread pool; expressing it per-thread keeps the cutover sensible when
/// `intra_op_threads_for` hands each of `p` learners a smaller pool.
const PAR_ROWS_PER_THREAD: usize = 8;

/// Register-block height: rows of `A` processed together, sharing each
/// streamed row of `B`.
const MR: usize = 4;

/// Column-panel width: output columns per pass, sized so one panel of
/// `C` plus a row of `B` stay in L1 (256 f32 = 1 KiB each).
const NC: usize = 256;

/// Width of the fixed vector panel in the inner kernels.
const VW: usize = 8;

/// Output rows at or above this count use the parallel path in `_auto`
/// kernels. Pool-aware: scales with the live thread count
/// ([`parallel::threads`]), so a 2-thread pool parallelizes mid-size GEMMs
/// a fixed 64-row threshold would serialize. Path choice never affects
/// results (parallel == serial bitwise).
pub fn par_threshold() -> usize {
    PAR_ROWS_PER_THREAD * parallel::threads().max(1)
}

/// Opt-in switch for the packed tolerance-mode GEMM family (see the
/// module docs). Off by default in every build; inert without the `simd`
/// feature, so flipping it can never perturb a default build.
static PACKED_GEMM: AtomicBool = AtomicBool::new(false);

/// GEMM dispatches that took the packed path.
static PACKED_TAKEN: AtomicU64 = AtomicU64::new(0);

/// GEMM dispatches that took the reference (bitwise-oracle) path.
static REF_TAKEN: AtomicU64 = AtomicU64::new(0);

/// Opt in to (or out of) the packed tolerance-mode GEMM path for the
/// `gemm_*_ws` dispatchers. A no-op unless built with `--features simd`.
pub fn set_packed_gemm(on: bool) {
    PACKED_GEMM.store(on, Ordering::Relaxed);
}

/// Whether `gemm_*_ws` may dispatch to the packed kernels: requires both
/// the `simd` feature *and* a [`set_packed_gemm`]`(true)` opt-in.
pub fn packed_gemm_enabled() -> bool {
    cfg!(feature = "simd") && PACKED_GEMM.load(Ordering::Relaxed)
}

/// `(packed, reference)` dispatch counts since the last reset — how many
/// `gemm_*_ws` calls actually took each path.
pub fn gemm_path_counts() -> (u64, u64) {
    (
        PACKED_TAKEN.load(Ordering::Relaxed),
        REF_TAKEN.load(Ordering::Relaxed),
    )
}

/// Zero the [`gemm_path_counts`] counters (bench-leg isolation).
pub fn reset_gemm_path_counts() {
    PACKED_TAKEN.store(0, Ordering::Relaxed);
    REF_TAKEN.store(0, Ordering::Relaxed);
}

/// Whether a dispatcher sends an `m`-row GEMM to the packed path: the
/// mode must be on and the output big enough that packing pays for
/// itself — the same [`par_threshold`] cutover the banded kernels use,
/// so "packed" and "parallel-worthy" engage together.
fn use_packed(m: usize) -> bool {
    packed_gemm_enabled() && m >= par_threshold()
}

/// Dispatched `out = A · B` (`A: [m,k]`, `B: [k,n]`) for hot-path callers
/// holding a [`Workspace`]: packed tolerance-mode kernel when opted in and
/// the shape is large, otherwise bitwise [`matmul_into_auto`].
// hot-path: dispatched GEMM (NN) — no allocation allowed
pub fn gemm_nn_ws(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    ws: &mut Workspace,
) {
    if use_packed(m) {
        PACKED_TAKEN.fetch_add(1, Ordering::Relaxed);
        return matmul_packed_into_ws(out, a, b, m, k, n, ws);
    }
    REF_TAKEN.fetch_add(1, Ordering::Relaxed);
    matmul_into_auto(out, a, b, m, k, n);
}

/// Dispatched `out = A · Bᵀ` (`A: [m,k]`, `B: [n,k]`); see [`gemm_nn_ws`].
// hot-path: dispatched GEMM (NT) — no allocation allowed
pub fn gemm_nt_ws(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    ws: &mut Workspace,
) {
    if use_packed(m) {
        PACKED_TAKEN.fetch_add(1, Ordering::Relaxed);
        return matmul_nt_packed_into_ws(out, a, b, m, k, n, ws);
    }
    REF_TAKEN.fetch_add(1, Ordering::Relaxed);
    matmul_nt_into_auto(out, a, b, m, k, n);
}

/// Dispatched `out = Aᵀ · B` (`A: [k,m]`, `B: [k,n]`); see [`gemm_nn_ws`].
/// The cutover tests `m` (output rows), as [`matmul_tn_into_auto`] does.
// hot-path: dispatched GEMM (TN) — no allocation allowed
pub fn gemm_tn_ws(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    n: usize,
    ws: &mut Workspace,
) {
    if use_packed(m) {
        PACKED_TAKEN.fetch_add(1, Ordering::Relaxed);
        return matmul_tn_packed_into_ws(out, a, b, k, m, n, ws);
    }
    REF_TAKEN.fetch_add(1, Ordering::Relaxed);
    matmul_tn_into_auto(out, a, b, k, m, n);
}

/// Packed `out = A · B`, unconditionally (no mode check): the tolerance
/// family's NN entry, for the bench roofline and the error-bound tests.
/// Normal callers go through [`gemm_nn_ws`].
// hot-path: packed GEMM (NN) — no allocation allowed
pub fn matmul_packed_into_ws(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    ws: &mut Workspace,
) {
    assert_eq!(out.len(), m * n, "matmul_packed output size");
    assert_eq!(a.len(), m * k, "matmul_packed lhs size");
    assert_eq!(b.len(), k * n, "matmul_packed rhs size");
    pack::gemm_packed(
        out,
        MatRef::Rm { d: a, ld: k },
        MatRef::Rm { d: b, ld: n },
        m,
        k,
        n,
        ws,
    );
}

/// Packed `out = A · Bᵀ` (`A: [m,k]`, `B: [n,k]`), unconditionally.
// hot-path: packed GEMM (NT) — no allocation allowed
pub fn matmul_nt_packed_into_ws(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    ws: &mut Workspace,
) {
    assert_eq!(out.len(), m * n, "matmul_nt_packed output size");
    assert_eq!(a.len(), m * k, "matmul_nt_packed lhs size");
    assert_eq!(b.len(), n * k, "matmul_nt_packed rhs size");
    pack::gemm_packed(
        out,
        MatRef::Rm { d: a, ld: k },
        MatRef::Cm { d: b, ld: k },
        m,
        k,
        n,
        ws,
    );
}

/// Packed `out = Aᵀ · B` (`A: [k,m]`, `B: [k,n]`), unconditionally.
// hot-path: packed GEMM (TN) — no allocation allowed
pub fn matmul_tn_packed_into_ws(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    n: usize,
    ws: &mut Workspace,
) {
    assert_eq!(out.len(), m * n, "matmul_tn_packed output size");
    assert_eq!(a.len(), k * m, "matmul_tn_packed lhs size");
    assert_eq!(b.len(), k * n, "matmul_tn_packed rhs size");
    pack::gemm_packed(
        out,
        MatRef::Cm { d: a, ld: m },
        MatRef::Rm { d: b, ld: n },
        m,
        k,
        n,
        ws,
    );
}

/// `orow += av * brow` over an 8-wide panel walk with a scalar tail.
/// Per element this is a single fused `+=` exactly like the scalar loop;
/// only the column walk is chunked, so results are bitwise unchanged.
#[inline]
fn axpy_row(orow: &mut [f32], brow: &[f32], av: f32) {
    debug_assert_eq!(orow.len(), brow.len());
    let mut oc = orow.chunks_exact_mut(VW);
    let mut bc = brow.chunks_exact(VW);
    for (og, bg) in oc.by_ref().zip(bc.by_ref()) {
        for t in 0..VW {
            og[t] += av * bg[t];
        }
    }
    for (o, &bv) in oc.into_remainder().iter_mut().zip(bc.remainder()) {
        *o += av * bv;
    }
}

/// Blocked `out = A · B` on raw row-major slices for a band of rows:
/// `out: [rows, n]`, `a: [rows, k]`, `b: [k, n]`.
///
/// Per element, terms accumulate in ascending `l` with `a[i,l] == 0`
/// skipped — the same order and skip rule as the naive row kernel, so
/// results are bitwise independent of `MR`/`NC`.
fn mm_rows_blocked(out: &mut [f32], a: &[f32], b: &[f32], rows: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), rows * n);
    debug_assert_eq!(a.len(), rows * k);
    debug_assert_eq!(b.len(), k * n);
    out.iter_mut().for_each(|x| *x = 0.0);
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut i0 = 0;
        while i0 < rows {
            let mr = MR.min(rows - i0);
            for l in 0..k {
                let brow = &b[l * n + jc..l * n + jc + nc];
                for i in i0..i0 + mr {
                    let av = a[i * k + l];
                    if av == 0.0 {
                        continue;
                    }
                    let orow = &mut out[i * n + jc..i * n + jc + nc];
                    axpy_row(orow, brow, av);
                }
            }
            i0 += mr;
        }
        jc += nc;
    }
}

/// `out = A · B` on raw slices, sequential (cache-blocked).
// hot-path: per-minibatch GEMM — no allocation allowed
pub fn matmul_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(out.len(), m * n, "matmul_into output size");
    assert_eq!(a.len(), m * k, "matmul_into lhs size");
    assert_eq!(b.len(), k * n, "matmul_into rhs size");
    mm_rows_blocked(out, a, b, m, k, n);
}

/// `out = A · B` on raw slices, bands of output rows over the thread pool
/// when the output is large. Bitwise identical to [`matmul_into`].
// hot-path: per-minibatch GEMM (banded) — no allocation allowed
pub fn matmul_into_auto(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(out.len(), m * n, "matmul_into output size");
    assert_eq!(a.len(), m * k, "matmul_into lhs size");
    assert_eq!(b.len(), k * n, "matmul_into rhs size");
    if !use_par(m) {
        return mm_rows_blocked(out, a, b, m, k, n);
    }
    let rows_per_band = band_rows(m);
    parallel::for_each_chunk_mut(out, rows_per_band * n, |band, oband| {
        let r0 = band * rows_per_band;
        let rows = oband.len() / n;
        mm_rows_blocked(oband, &a[r0 * k..(r0 + rows) * k], b, rows, k, n);
    });
}

/// `C = A · B` for `A: [m,k]`, `B: [k,n]`, sequential (cache-blocked).
///
/// # Panics
/// Panics if inner dimensions disagree or inputs are not matrices.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    mm_rows_blocked(out.as_mut_slice(), a.as_slice(), b.as_slice(), m, k, n);
    out
}

/// `C = A · B`, bands of output rows distributed over the thread pool.
/// Bitwise identical to [`matmul`] at any thread count.
pub fn matmul_par(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    let rows_per_band = band_rows(m);
    let ad = a.as_slice();
    let bd = b.as_slice();
    parallel::for_each_chunk_mut(out.as_mut_slice(), rows_per_band * n, |band, oband| {
        let r0 = band * rows_per_band;
        let rows = oband.len() / n;
        mm_rows_blocked(oband, &ad[r0 * k..(r0 + rows) * k], bd, rows, k, n);
    });
    out
}

/// `C = A · B` choosing the parallel path for large outputs.
pub fn matmul_auto(a: &Tensor, b: &Tensor) -> Tensor {
    if use_par(a.dims()[0]) {
        matmul_par(a, b)
    } else {
        matmul(a, b)
    }
}

/// Row of `C = Aᵀ · B`: `out_row = Σ_l a[l,i] · b[l, ·]` in ascending `l`
/// with `a[l,i] == 0` skipped — the same per-element order as the
/// `l`-outer sequential kernel.
fn tn_row(out_row: &mut [f32], a: &[f32], b: &[f32], i: usize, m: usize, k: usize, n: usize) {
    out_row.iter_mut().for_each(|x| *x = 0.0);
    for l in 0..k {
        let av = a[l * m + i];
        if av == 0.0 {
            continue;
        }
        let brow = &b[l * n..(l + 1) * n];
        axpy_row(out_row, brow, av);
    }
}

/// `out = Aᵀ · B` on raw slices for `A: [k,m]`, `B: [k,n]`, sequential
/// (`l`-outer: streams both `A` and `B` rows once).
// hot-path: weight-gradient GEMM — no allocation allowed
pub fn matmul_tn_into(out: &mut [f32], a: &[f32], b: &[f32], k: usize, m: usize, n: usize) {
    assert_eq!(out.len(), m * n, "matmul_tn_into output size");
    assert_eq!(a.len(), k * m, "matmul_tn_into lhs size");
    assert_eq!(b.len(), k * n, "matmul_tn_into rhs size");
    out.iter_mut().for_each(|x| *x = 0.0);
    for l in 0..k {
        let arow = &a[l * m..(l + 1) * m];
        let brow = &b[l * n..(l + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            axpy_row(orow, brow, av);
        }
    }
}

/// `out = Aᵀ · B` on raw slices, output rows over the thread pool when
/// large. Bitwise identical to [`matmul_tn_into`].
// hot-path: weight-gradient GEMM (banded) — no allocation allowed
pub fn matmul_tn_into_auto(out: &mut [f32], a: &[f32], b: &[f32], k: usize, m: usize, n: usize) {
    if !use_par(m) {
        return matmul_tn_into(out, a, b, k, m, n);
    }
    assert_eq!(out.len(), m * n, "matmul_tn_into output size");
    assert_eq!(a.len(), k * m, "matmul_tn_into lhs size");
    assert_eq!(b.len(), k * n, "matmul_tn_into rhs size");
    parallel::for_each_chunk_mut(out, n, |i, row| {
        tn_row(row, a, b, i, m, k, n);
    });
}

/// `C = Aᵀ · B` for `A: [k,m]`, `B: [k,n]` without materializing `Aᵀ`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_tn inner dims {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    matmul_tn_into(out.as_mut_slice(), a.as_slice(), b.as_slice(), k, m, n);
    out
}

/// `C = Aᵀ · B`, output rows distributed over the thread pool. Bitwise
/// identical to [`matmul_tn`].
pub fn matmul_tn_par(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_tn inner dims {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.as_slice(), b.as_slice());
    parallel::for_each_chunk_mut(out.as_mut_slice(), n, |i, row| {
        tn_row(row, ad, bd, i, m, k, n);
    });
    out
}

/// `C = Aᵀ · B` choosing the parallel path for large outputs.
pub fn matmul_tn_auto(a: &Tensor, b: &Tensor) -> Tensor {
    if use_par(a.dims()[1]) {
        matmul_tn_par(a, b)
    } else {
        matmul_tn(a, b)
    }
}

/// Band of rows of `C = A · Bᵀ`: each element is a dot product in
/// ascending `l` (no zero-skip, matching [`dot`]).
///
/// Columns are computed in panels of 8 with 8 *independent* accumulators —
/// each accumulator runs the exact `dot` fold for its own column, so the
/// panel walk is bitwise identical to calling [`dot`] per column while
/// letting 8 FP-add chains overlap instead of serializing on one.
pub(crate) fn nt_rows(out: &mut [f32], a: &[f32], b: &[f32], rows: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), rows * n);
    debug_assert_eq!(a.len(), rows * k);
    debug_assert_eq!(b.len(), n * k);
    for i in 0..rows {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + VW <= n {
            let bs: [&[f32]; VW] = core::array::from_fn(|t| &b[(j + t) * k..(j + t + 1) * k]);
            let mut acc = [0.0f32; VW];
            for (l, &av) in arow.iter().enumerate() {
                for t in 0..VW {
                    acc[t] += av * bs[t][l];
                }
            }
            orow[j..j + VW].copy_from_slice(&acc);
            j += VW;
        }
        for jj in j..n {
            orow[jj] = dot(arow, &b[jj * k..(jj + 1) * k]);
        }
    }
}

/// `out = A · Bᵀ` on raw slices for `A: [m,k]`, `B: [n,k]`, sequential.
// hot-path: conv/linear forward GEMM — no allocation allowed
pub fn matmul_nt_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(out.len(), m * n, "matmul_nt_into output size");
    assert_eq!(a.len(), m * k, "matmul_nt_into lhs size");
    assert_eq!(b.len(), n * k, "matmul_nt_into rhs size");
    nt_rows(out, a, b, m, k, n);
}

/// `out = A · Bᵀ` on raw slices, row bands over the thread pool when
/// large. Bitwise identical to [`matmul_nt_into`].
// hot-path: conv/linear forward GEMM (banded) — no allocation allowed
pub fn matmul_nt_into_auto(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(out.len(), m * n, "matmul_nt_into output size");
    assert_eq!(a.len(), m * k, "matmul_nt_into lhs size");
    assert_eq!(b.len(), n * k, "matmul_nt_into rhs size");
    if !use_par(m) {
        return nt_rows(out, a, b, m, k, n);
    }
    let rows_per_band = band_rows(m);
    parallel::for_each_chunk_mut(out, rows_per_band * n, |band, oband| {
        let r0 = band * rows_per_band;
        let rows = oband.len() / n;
        nt_rows(oband, &a[r0 * k..(r0 + rows) * k], b, rows, k, n);
    });
}

/// `C = A · Bᵀ` for `A: [m,k]`, `B: [n,k]` without materializing `Bᵀ`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nt inner dims {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    nt_rows(out.as_mut_slice(), a.as_slice(), b.as_slice(), m, k, n);
    out
}

/// `C = A · Bᵀ`, bands of output rows distributed over the thread pool.
/// Bitwise identical to [`matmul_nt`].
pub fn matmul_nt_par(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nt inner dims {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    let rows_per_band = band_rows(m);
    let ad = a.as_slice();
    let bd = b.as_slice();
    parallel::for_each_chunk_mut(out.as_mut_slice(), rows_per_band * n, |band, oband| {
        let r0 = band * rows_per_band;
        let rows = oband.len() / n;
        nt_rows(oband, &ad[r0 * k..(r0 + rows) * k], bd, rows, k, n);
    });
    out
}

/// `C = A · Bᵀ` choosing the parallel path for large outputs.
pub fn matmul_nt_auto(a: &Tensor, b: &Tensor) -> Tensor {
    if use_par(a.dims()[0]) {
        matmul_nt_par(a, b)
    } else {
        matmul_nt(a, b)
    }
}

/// Rows per parallel band: enough bands to feed the pool (~4 per thread
/// for load balance), at least `MR` so the blocked kernel keeps its
/// register blocking. Band size never affects results.
fn band_rows(m: usize) -> usize {
    let target_bands = parallel::threads() * 4;
    m.div_ceil(target_bands.max(1)).max(MR)
}

fn use_par(rows: usize) -> bool {
    parallel::threads() > 1 && rows >= par_threshold()
}

/// Dot product of two equal-length slices.
#[inline]
// hot-path: innermost reduction — no allocation allowed
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y[j] += sum_i m[i][j]` — column sums accumulated into `y` (bias grads).
// hot-path: bias gradient accumulation — no allocation allowed
pub fn col_sums_into(m: &Tensor, y: &mut [f32]) {
    let (rows, cols) = (m.dims()[0], m.dims()[1]);
    assert_eq!(y.len(), cols, "col_sums_into width mismatch");
    let md = m.as_slice();
    for r in 0..rows {
        for (yj, &v) in y.iter_mut().zip(&md[r * cols..(r + 1) * cols]) {
            *yj += v;
        }
    }
}

/// Add a bias row vector to every row of a matrix in place.
// hot-path: bias add — no allocation allowed
pub fn add_bias_rows(m: &mut Tensor, bias: &[f32]) {
    let cols = m.dims()[1];
    assert_eq!(bias.len(), cols, "bias width mismatch");
    for row in m.as_mut_slice().chunks_mut(cols) {
        for (x, &b) in row.iter_mut().zip(bias) {
            *x += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedRng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for l in 0..k {
                    s += a.as_slice()[i * k + l] * b.as_slice()[l * n + j];
                }
                c.as_mut_slice()[i * n + j] = s;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let mut r = SeedRng::new(1);
        let a = r.normal_tensor(&[7, 5], 1.0);
        let b = r.normal_tensor(&[5, 9], 1.0);
        assert!(matmul(&a, &b).allclose(&naive(&a, &b), 1e-4));
    }

    #[test]
    fn blocked_kernel_handles_panel_boundaries() {
        // Shapes straddling the MR, NC and vector-panel block edges.
        let mut r = SeedRng::new(7);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (5, 3, 255),
            (9, 2, 257),
            (4, 4, 512),
            (3, 5, 7),
            (2, 3, 8),
            (6, 2, 9),
        ] {
            let a = r.normal_tensor(&[m, k], 1.0);
            let b = r.normal_tensor(&[k, n], 1.0);
            assert!(
                matmul(&a, &b).allclose(&naive(&a, &b), 1e-3),
                "mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn parallel_equals_sequential_bitwise() {
        let mut r = SeedRng::new(2);
        let a = r.normal_tensor(&[130, 33], 1.0);
        let b = r.normal_tensor(&[33, 21], 1.0);
        let s = matmul(&a, &b);
        let p = matmul_par(&a, &b);
        assert_eq!(
            s.as_slice(),
            p.as_slice(),
            "parallel path must be bit-identical"
        );
        assert_eq!(matmul_auto(&a, &b).as_slice(), s.as_slice());
    }

    #[test]
    fn tn_and_nt_parallel_bitwise() {
        let mut r = SeedRng::new(6);
        let a = r.normal_tensor(&[33, 130], 1.0);
        let b = r.normal_tensor(&[33, 17], 1.0);
        assert_eq!(
            matmul_tn(&a, &b).as_slice(),
            matmul_tn_par(&a, &b).as_slice()
        );
        assert_eq!(
            matmul_tn_auto(&a, &b).as_slice(),
            matmul_tn(&a, &b).as_slice()
        );
        let c = r.normal_tensor(&[130, 12], 1.0);
        let d = r.normal_tensor(&[29, 12], 1.0);
        assert_eq!(
            matmul_nt(&c, &d).as_slice(),
            matmul_nt_par(&c, &d).as_slice()
        );
        assert_eq!(
            matmul_nt_auto(&c, &d).as_slice(),
            matmul_nt(&c, &d).as_slice()
        );
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let mut r = SeedRng::new(3);
        let a = r.normal_tensor(&[6, 4], 1.0);
        let b = r.normal_tensor(&[6, 5], 1.0);
        // A^T B where A:[6,4] -> At:[4,6]
        let mut at = Tensor::zeros(&[4, 6]);
        for i in 0..6 {
            for j in 0..4 {
                at.as_mut_slice()[j * 6 + i] = a.as_slice()[i * 4 + j];
            }
        }
        assert!(matmul_tn(&a, &b).allclose(&naive(&at, &b), 1e-4));

        let c = r.normal_tensor(&[3, 4], 1.0);
        let d = r.normal_tensor(&[7, 4], 1.0);
        let mut dt = Tensor::zeros(&[4, 7]);
        for i in 0..7 {
            for j in 0..4 {
                dt.as_mut_slice()[j * 7 + i] = d.as_slice()[i * 4 + j];
            }
        }
        assert!(matmul_nt(&c, &d).allclose(&naive(&c, &dt), 1e-4));
    }

    #[test]
    fn nt_panel_kernel_matches_per_column_dot() {
        // The 8-accumulator panel must equal the scalar dot per column at
        // the bit level, across panel-boundary widths.
        let mut r = SeedRng::new(9);
        for &(m, k, n) in &[(3usize, 5usize, 1usize), (2, 7, 8), (4, 3, 9), (1, 16, 23)] {
            let a = r.normal_tensor(&[m, k], 1.0);
            let b = r.normal_tensor(&[n, k], 1.0);
            let fast = matmul_nt(&a, &b);
            for i in 0..m {
                for j in 0..n {
                    let want = dot(
                        &a.as_slice()[i * k..(i + 1) * k],
                        &b.as_slice()[j * k..(j + 1) * k],
                    );
                    let got = fast.as_slice()[i * n + j];
                    assert_eq!(got.to_bits(), want.to_bits(), "({m},{k},{n}) at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn into_variants_match_tensor_variants_bitwise() {
        let mut r = SeedRng::new(11);
        let a = r.normal_tensor(&[70, 13], 1.0);
        let b = r.normal_tensor(&[13, 19], 1.0);
        let mut out = vec![1.0f32; 70 * 19]; // dirty buffer: kernels must overwrite
        matmul_into_auto(&mut out, a.as_slice(), b.as_slice(), 70, 13, 19);
        assert_eq!(out, matmul(&a, &b).as_slice());

        let at = r.normal_tensor(&[13, 70], 1.0);
        let mut out = vec![1.0f32; 70 * 19];
        matmul_tn_into_auto(&mut out, at.as_slice(), b.as_slice(), 13, 70, 19);
        assert_eq!(out, matmul_tn(&at, &b).as_slice());

        let bt = r.normal_tensor(&[19, 13], 1.0);
        let mut out = vec![1.0f32; 70 * 19];
        matmul_nt_into_auto(&mut out, a.as_slice(), bt.as_slice(), 70, 13, 19);
        assert_eq!(out, matmul_nt(&a, &bt).as_slice());
    }

    #[test]
    fn par_threshold_scales_with_pool() {
        // With a 1-thread pool (test default) the threshold is the
        // per-thread floor; it can only grow with more threads.
        assert_eq!(par_threshold() % 8, 0);
        assert!(par_threshold() >= 8);
    }

    #[test]
    fn identity_is_neutral() {
        let mut r = SeedRng::new(4);
        let a = r.normal_tensor(&[5, 5], 1.0);
        assert!(matmul(&a, &Tensor::eye(5)).allclose(&a, 1e-6));
        assert!(matmul(&Tensor::eye(5), &a).allclose(&a, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn dimension_mismatch_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn bias_and_col_sums() {
        let mut m = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        add_bias_rows(&mut m, &[10., 20.]);
        assert_eq!(m.as_slice(), &[11., 22., 13., 24.]);
        let mut sums = vec![0.0; 2];
        col_sums_into(&m, &mut sums);
        assert_eq!(sums, vec![24., 46.]);
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }
}

//! End-to-end training benches: one real-thread SASGD epoch at several
//! `p`/`T` points (DESIGN.md §5, item 4 — the interval sweep) and the
//! analytic epoch-time model evaluated over the paper's full grid
//! (Figs 4–6's generator, measured for regression tracking).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sasgd_bench::scale::{cifar_workload, Scale};
use sasgd_core::epoch_time::{epoch_time, Aggregation, Workload};
use sasgd_core::{run_threaded_sasgd, Compression, GammaP, TrainConfig};
use sasgd_simnet::{CostModel, JitterModel};
use sasgd_tensor::SeedRng;

fn bench_threaded_epoch(c: &mut Criterion) {
    let mut g = c.benchmark_group("threaded_sasgd_epoch");
    g.sample_size(10);
    let w = cifar_workload(Scale::Tiny, Some(1));
    for &(p, t) in &[(1usize, 1usize), (2, 1), (4, 1), (4, 50)] {
        let id = format!("p{p}_T{t}");
        g.bench_with_input(BenchmarkId::from_parameter(&id), &(p, t), |b, &(p, t)| {
            b.iter(|| {
                let mut cfg = TrainConfig::new(1, w.batch, w.gamma_hi, 42);
                cfg.jitter = JitterModel::none();
                cfg.eval_cap = 64;
                run_threaded_sasgd(&*w.factory, &w.train, &w.test, &cfg, p, t, GammaP::OverP)
            })
        });
    }
    g.finish();
}

fn bench_epoch_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("epoch_time_model");
    g.sample_size(10);
    let cost = CostModel::paper_testbed();
    let jit = JitterModel::default();
    let cifar = Workload::cifar10();
    g.bench_function("full_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in [1usize, 2, 4, 8] {
                for t in [1usize, 50] {
                    acc += epoch_time(&cost, &cifar, Aggregation::AllreduceTree, p, t, &jit, 1)
                        .total();
                }
            }
            acc
        })
    });
    g.finish();
}

fn bench_compression(c: &mut Criterion) {
    let mut g = c.benchmark_group("gradient_compression");
    g.sample_size(10);
    // A paper-scale (0.5 M element) gradient vector.
    let m = 506_378usize;
    let grad = SeedRng::new(3).normal_tensor(&[m], 1.0).into_vec();
    for (name, scheme) in [
        ("top_10pct", Compression::TopK { ratio: 0.10 }),
        ("top_1pct", Compression::TopK { ratio: 0.01 }),
        ("uniform_8bit", Compression::Uniform8Bit),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, s| {
            b.iter(|| s.compress(&grad))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_threaded_epoch,
    bench_epoch_model,
    bench_compression
);
criterion_main!(benches);

//! 2-D convolution layer (NCHW) wrapping the im2col kernels.

use sasgd_tensor::conv::{conv2d_backward_ws, conv2d_forward_ws, Conv2dSpec};
use sasgd_tensor::{SeedRng, Tensor};

use crate::init;
use crate::layer::{Ctx, Layer};

/// Spatial convolution: `[ci, h, w] -> [co, oh, ow]` per sample.
pub struct Conv2d {
    spec: Conv2dSpec,
    weight: Tensor,
    bias: Vec<f32>,
    dweight: Tensor,
    dbias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// New layer; `pad` and `stride` as in the paper's Torch models
    /// (stride 1; padding preserving size for the 5×5/3×3 stages).
    pub fn new(
        ci: usize,
        co: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
        rng: &mut SeedRng,
    ) -> Self {
        let spec = Conv2dSpec {
            ci,
            co,
            kh,
            kw,
            stride,
            pad,
        };
        let fan_in = ci * kh * kw;
        Conv2d {
            spec,
            weight: init::torch_uniform(rng, &[co, fan_in], fan_in),
            bias: init::torch_uniform_bias(rng, co, fan_in),
            dweight: Tensor::zeros(&[co, fan_in]),
            dbias: vec![0.0; co],
            cached_input: None,
        }
    }

    /// The geometry of this convolution.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "Conv2d"
    }

    // hot-path: delegates to the workspace-backed conv kernel
    fn forward(&mut self, input: Tensor, ctx: &mut Ctx) -> Tensor {
        let out = conv2d_forward_ws(&input, &self.weight, &self.bias, &self.spec, &mut ctx.ws);
        if ctx.training {
            self.cached_input = Some(input);
        } else {
            ctx.ws.recycle(input);
        }
        out
    }

    // hot-path: delegates to the workspace-backed conv kernel
    fn backward(&mut self, grad_out: Tensor, ctx: &mut Ctx) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward without forward (or eval-mode forward)");
        let grads = conv2d_backward_ws(&input, &self.weight, &grad_out, &self.spec, &mut ctx.ws);
        ctx.ws.recycle(input);
        ctx.ws.recycle(grad_out);
        self.dweight.add_assign(&grads.dweight);
        for (a, b) in self.dbias.iter_mut().zip(&grads.dbias) {
            *a += b;
        }
        ctx.ws.recycle(grads.dweight);
        ctx.ws.give_f32(grads.dbias);
        grads.dinput
    }

    fn param_len(&self) -> usize {
        self.weight.numel() + self.bias.len()
    }

    fn read_params(&self, out: &mut [f32]) {
        let w = self.weight.numel();
        out[..w].copy_from_slice(self.weight.as_slice());
        out[w..].copy_from_slice(&self.bias);
    }

    fn write_params(&mut self, src: &[f32]) {
        let w = self.weight.numel();
        self.weight.as_mut_slice().copy_from_slice(&src[..w]);
        self.bias.copy_from_slice(&src[w..]);
    }

    fn read_grads(&self, out: &mut [f32]) {
        let w = self.dweight.numel();
        out[..w].copy_from_slice(self.dweight.as_slice());
        out[w..].copy_from_slice(&self.dbias);
    }

    fn zero_grads(&mut self) {
        self.dweight.zero_();
        self.dbias.iter_mut().for_each(|x| *x = 0.0);
    }

    fn out_shape(&self, in_dims: &[usize]) -> Vec<usize> {
        assert_eq!(
            in_dims.len(),
            3,
            "Conv2d expects [c, h, w], got {in_dims:?}"
        );
        assert_eq!(in_dims[0], self.spec.ci, "channel mismatch");
        let (oh, ow) = self.spec.out_hw(in_dims[1], in_dims[2]);
        vec![self.spec.co, oh, ow]
    }

    fn macs(&self, in_dims: &[usize]) -> u64 {
        self.spec.forward_macs(in_dims[1], in_dims[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_first_layer_geometry() {
        let mut rng = SeedRng::new(1);
        let c = Conv2d::new(3, 64, 5, 5, 1, 2, &mut rng);
        assert_eq!(c.param_len(), 3 * 64 * 25 + 64); // 4,864
        assert_eq!(c.out_shape(&[3, 32, 32]), vec![64, 32, 32]);
    }

    #[test]
    fn forward_backward_roundtrip_with_fd() {
        let mut rng = SeedRng::new(2);
        let mut c = Conv2d::new(2, 3, 3, 3, 1, 1, &mut rng);
        let x = rng.normal_tensor(&[2, 2, 5, 5], 1.0);
        let mut ctx = Ctx::train(SeedRng::new(0));
        let out = c.forward(x.clone(), &mut ctx);
        assert_eq!(out.dims(), &[2, 3, 5, 5]);
        let dx = c.backward(Tensor::full(out.dims(), 1.0), &mut ctx);
        assert_eq!(dx.dims(), x.dims());

        let mut grads = vec![0.0; c.param_len()];
        c.read_grads(&mut grads);
        let mut params = vec![0.0; c.param_len()];
        c.read_params(&mut params);
        let eps = 1e-2f32;
        let base = c.forward(x.clone(), &mut Ctx::eval()).sum();
        for &k in &[0usize, 10, 30, c.param_len() - 2, c.param_len() - 1] {
            let mut p = params.clone();
            p[k] += eps;
            c.write_params(&p);
            let up = c.forward(x.clone(), &mut Ctx::eval()).sum();
            c.write_params(&params);
            let fd = (up - base) / eps;
            assert!(
                (fd - grads[k]).abs() < 0.05 * (1.0 + grads[k].abs()),
                "param {k}: fd {fd} vs {}",
                grads[k]
            );
        }
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut rng = SeedRng::new(3);
        let mut c = Conv2d::new(1, 1, 2, 2, 1, 0, &mut rng);
        let x = rng.normal_tensor(&[1, 1, 3, 3], 1.0);
        c.forward(x, &mut Ctx::eval());
        assert!(c.cached_input.is_none());
    }
}

//! Average pooling and local response normalization — the extra layers an
//! AlexNet-style network needs (§II: "other networks with deeper
//! structures such as AlexNet ... The approaches discussed in this paper
//! work for these networks also").

use sasgd_tensor::Tensor;

use crate::layer::{Ctx, Layer};

/// Spatial average pooling (window = stride, like the paper's max pools).
pub struct AvgPool2d {
    window: usize,
    cached_in_dims: Vec<usize>,
}

impl AvgPool2d {
    /// Square window with stride = window.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1);
        AvgPool2d {
            window,
            cached_in_dims: Vec::new(),
        }
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> &'static str {
        "AvgPool2d"
    }

    fn forward(&mut self, input: Tensor, ctx: &mut Ctx) -> Tensor {
        let [n, c, h, w] = [
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        ];
        let k = self.window;
        let (oh, ow) = (h / k, w / k);
        assert!(oh >= 1 && ow >= 1, "input smaller than pool window");
        let mut out = Tensor::zeros_in(&[n, c, oh, ow], &mut ctx.ws);
        let id = input.as_slice();
        let od = out.as_mut_slice();
        let inv = 1.0 / (k * k) as f32;
        let mut o = 0usize;
        for img in 0..n {
            for ch in 0..c {
                let plane = (img * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut s = 0.0f32;
                        for ky in 0..k {
                            for kx in 0..k {
                                s += id[plane + (oy * k + ky) * w + (ox * k + kx)];
                            }
                        }
                        od[o] = s * inv;
                        o += 1;
                    }
                }
            }
        }
        if ctx.training {
            self.cached_in_dims = input.dims().to_vec();
        }
        ctx.ws.recycle(input);
        out
    }

    fn backward(&mut self, grad_out: Tensor, ctx: &mut Ctx) -> Tensor {
        let [n, c, h, w] = [
            self.cached_in_dims[0],
            self.cached_in_dims[1],
            self.cached_in_dims[2],
            self.cached_in_dims[3],
        ];
        let k = self.window;
        let (oh, ow) = (h / k, w / k);
        let inv = 1.0 / (k * k) as f32;
        let mut din = Tensor::zeros_in(&[n, c, h, w], &mut ctx.ws);
        let gd = grad_out.as_slice();
        let dd = din.as_mut_slice();
        let mut o = 0usize;
        for img in 0..n {
            for ch in 0..c {
                let plane = (img * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = gd[o] * inv;
                        o += 1;
                        for ky in 0..k {
                            for kx in 0..k {
                                dd[plane + (oy * k + ky) * w + (ox * k + kx)] += g;
                            }
                        }
                    }
                }
            }
        }
        ctx.ws.recycle(grad_out);
        din
    }

    fn out_shape(&self, in_dims: &[usize]) -> Vec<usize> {
        vec![
            in_dims[0],
            in_dims[1] / self.window,
            in_dims[2] / self.window,
        ]
    }

    fn macs(&self, in_dims: &[usize]) -> u64 {
        in_dims.iter().product::<usize>() as u64
    }
}

/// AlexNet-style local response normalization across channels:
/// `y = x / (k + α/n · Σ_{nearby channels} x²)^β`.
pub struct LocalResponseNorm {
    size: usize,
    alpha: f32,
    beta: f32,
    k: f32,
    cached_input: Option<Tensor>,
}

impl LocalResponseNorm {
    /// AlexNet's published constants: `size=5, α=1e-4, β=0.75, k=2`.
    pub fn alexnet() -> Self {
        LocalResponseNorm {
            size: 5,
            alpha: 1e-4,
            beta: 0.75,
            k: 2.0,
            cached_input: None,
        }
    }

    /// Custom constants.
    pub fn new(size: usize, alpha: f32, beta: f32, k: f32) -> Self {
        assert!(size >= 1);
        LocalResponseNorm {
            size,
            alpha,
            beta,
            k,
            cached_input: None,
        }
    }

    fn denom_at(&self, input: &Tensor, img: usize, ch: usize, y: usize, x: usize) -> f32 {
        let c = input.dims()[1];
        let half = self.size / 2;
        let lo = ch.saturating_sub(half);
        let hi = (ch + half).min(c - 1);
        let mut s = 0.0f32;
        for cc in lo..=hi {
            let v = input.at4(img, cc, y, x);
            s += v * v;
        }
        self.k + self.alpha / self.size as f32 * s
    }
}

impl Layer for LocalResponseNorm {
    fn name(&self) -> &'static str {
        "LocalResponseNorm"
    }

    fn forward(&mut self, input: Tensor, ctx: &mut Ctx) -> Tensor {
        let [n, c, h, w] = [
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        ];
        let mut out = Tensor::zeros_in(&[n, c, h, w], &mut ctx.ws);
        for img in 0..n {
            for ch in 0..c {
                for y in 0..h {
                    for x in 0..w {
                        let d = self.denom_at(&input, img, ch, y, x);
                        let idx = out.idx4(img, ch, y, x);
                        out.as_mut_slice()[idx] = input.at4(img, ch, y, x) * d.powf(-self.beta);
                    }
                }
            }
        }
        if ctx.training {
            self.cached_input = Some(input);
        } else {
            ctx.ws.recycle(input);
        }
        out
    }

    fn backward(&mut self, grad_out: Tensor, ctx: &mut Ctx) -> Tensor {
        // Exact LRN backward couples nearby channels; we use the dominant
        // diagonal term d(y_i)/d(x_i) ≈ denom^{-β} − 2αβ/n · x_i² ·
        // denom^{-β-1}, the standard fast approximation (cross terms are
        // O(α) ≈ 1e-4 and negligible at these constants).
        let input = self.cached_input.take().expect("backward without forward");
        let [n, c, h, w] = [
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        ];
        let mut din = Tensor::zeros_in(&[n, c, h, w], &mut ctx.ws);
        for img in 0..n {
            for ch in 0..c {
                for y in 0..h {
                    for x in 0..w {
                        let d = self.denom_at(&input, img, ch, y, x);
                        let xi = input.at4(img, ch, y, x);
                        let diag = d.powf(-self.beta)
                            - 2.0 * self.alpha * self.beta / self.size as f32
                                * xi
                                * xi
                                * d.powf(-self.beta - 1.0);
                        let idx = din.idx4(img, ch, y, x);
                        din.as_mut_slice()[idx] = grad_out.at4(img, ch, y, x) * diag;
                    }
                }
            }
        }
        ctx.ws.recycle(input);
        ctx.ws.recycle(grad_out);
        din
    }

    fn out_shape(&self, in_dims: &[usize]) -> Vec<usize> {
        in_dims.to_vec()
    }

    fn macs(&self, in_dims: &[usize]) -> u64 {
        (in_dims.iter().product::<usize>() * self.size) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_tensor::SeedRng;

    #[test]
    fn avg_pool_averages() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 2, 2]);
        let mut p = AvgPool2d::new(2);
        let y = p.forward(x, &mut Ctx::eval());
        assert_eq!(y.as_slice(), &[2.5]);
    }

    #[test]
    fn avg_pool_backward_spreads_uniformly() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 2, 2]);
        let mut p = AvgPool2d::new(2);
        let mut ctx = Ctx::train(SeedRng::new(0));
        let _ = p.forward(x, &mut ctx);
        let din = p.backward(Tensor::from_vec(vec![8.0], &[1, 1, 1, 1]), &mut ctx);
        assert_eq!(din.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn avg_pool_backward_matches_fd() {
        let mut rng = SeedRng::new(1);
        let x = rng.normal_tensor(&[1, 2, 4, 4], 1.0);
        let mut p = AvgPool2d::new(2);
        let mut ctx = Ctx::train(SeedRng::new(0));
        let y = p.forward(x.clone(), &mut ctx);
        let din = p.backward(Tensor::full(y.dims(), 1.0), &mut ctx);
        let eps = 1e-2f32;
        let base = p.forward(x.clone(), &mut Ctx::eval()).sum();
        for &k in &[0usize, 7, 20, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[k] += eps;
            let up = p.forward(xp, &mut Ctx::eval()).sum();
            let fd = (up - base) / eps;
            assert!(
                (fd - din.as_slice()[k]).abs() < 1e-3,
                "k={k}: {fd} vs {}",
                din.as_slice()[k]
            );
        }
    }

    #[test]
    fn lrn_is_nearly_identity_at_alexnet_constants() {
        // With α=1e-4 the normalization is a gentle squash: outputs close
        // to x/k^β.
        let mut rng = SeedRng::new(2);
        let x = rng.normal_tensor(&[1, 8, 3, 3], 1.0);
        let mut lrn = LocalResponseNorm::alexnet();
        let y = lrn.forward(x.clone(), &mut Ctx::eval());
        let scale = 2.0f32.powf(-0.75);
        for (a, b) in y.as_slice().iter().zip(x.as_slice()) {
            assert!(
                (a - b * scale).abs() < 0.01 * (1.0 + b.abs()),
                "{a} vs {}",
                b * scale
            );
        }
    }

    #[test]
    fn lrn_squashes_large_activations_more() {
        // The response ratio y/x falls as the local energy grows.
        let small = Tensor::full(&[1, 5, 1, 1], 0.1);
        let large = Tensor::full(&[1, 5, 1, 1], 50.0);
        let mut lrn = LocalResponseNorm::new(5, 0.1, 0.75, 2.0);
        let ys = lrn.forward(small, &mut Ctx::eval());
        let yl = lrn.forward(large, &mut Ctx::eval());
        let rs = ys.as_slice()[0] / 0.1;
        let rl = yl.as_slice()[0] / 50.0;
        assert!(
            rl < rs,
            "large inputs must be squashed harder: {rl} vs {rs}"
        );
    }

    #[test]
    fn lrn_backward_matches_fd_at_small_alpha() {
        let mut rng = SeedRng::new(3);
        let x = rng.normal_tensor(&[1, 4, 2, 2], 1.0);
        let mut lrn = LocalResponseNorm::alexnet();
        let mut ctx = Ctx::train(SeedRng::new(0));
        let y = lrn.forward(x.clone(), &mut ctx);
        let din = lrn.backward(Tensor::full(y.dims(), 1.0), &mut ctx);
        let eps = 1e-2f32;
        let base = lrn.forward(x.clone(), &mut Ctx::eval()).sum();
        for &k in &[0usize, 5, 10, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[k] += eps;
            let up = lrn.forward(xp, &mut Ctx::eval()).sum();
            let fd = (up - base) / eps;
            // Diagonal approximation: allow the O(α) cross-term slack.
            assert!((fd - din.as_slice()[k]).abs() < 0.02 * (1.0 + fd.abs()));
        }
    }

    #[test]
    fn shapes_and_param_counts() {
        let p = AvgPool2d::new(2);
        assert_eq!(p.out_shape(&[16, 8, 8]), vec![16, 4, 4]);
        assert_eq!(p.param_len(), 0);
        let l = LocalResponseNorm::alexnet();
        assert_eq!(l.out_shape(&[16, 8, 8]), vec![16, 8, 8]);
        assert_eq!(l.param_len(), 0);
    }
}

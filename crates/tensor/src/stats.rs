//! Small statistics helpers used by the theory estimators and reports.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population variance; `0.0` for fewer than two samples.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f32>() / xs.len() as f32
}

/// Maximum; `None` for an empty slice (NaNs compare as smallest).
pub fn max(xs: &[f32]) -> Option<f32> {
    xs.iter().copied().fold(None, |acc, x| match acc {
        None => Some(x),
        Some(a) => Some(if x > a { x } else { a }),
    })
}

/// Simple linear interpolation of `y` at `x` over sorted `(xs, ys)` pairs,
/// clamping outside the range. Used to align accuracy curves measured at
/// different epoch granularities (Downpour reports every `p` epochs).
pub fn interp(xs: &[f32], ys: &[f32], x: f32) -> f32 {
    assert_eq!(xs.len(), ys.len());
    assert!(!xs.is_empty(), "interp over empty series");
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    let i = xs.partition_point(|&v| v < x);
    let (x0, x1) = (xs[i - 1], xs[i]);
    let (y0, y1) = (ys[i - 1], ys[i]);
    if x1 == x0 {
        y0
    } else {
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn max_handles_empty_and_negative() {
        assert_eq!(max(&[]), None);
        assert_eq!(max(&[-3.0, -1.0, -2.0]), Some(-1.0));
    }

    #[test]
    fn interp_clamps_and_interpolates() {
        let xs = [1.0, 2.0, 4.0];
        let ys = [10.0, 20.0, 40.0];
        assert_eq!(interp(&xs, &ys, 0.5), 10.0);
        assert_eq!(interp(&xs, &ys, 5.0), 40.0);
        assert_eq!(interp(&xs, &ys, 3.0), 30.0);
        assert_eq!(interp(&xs, &ys, 2.0), 20.0);
    }
}

//! The dense tensor type and its element-wise operations.

use crate::shape::Shape;

/// A dense, row-major `f32` tensor.
///
/// All model parameters, activations and gradients in the reproduction are
/// `Tensor`s. The representation is deliberately simple — an owned `Vec<f32>`
/// plus a [`Shape`] — because the distributed algorithms of the paper operate
/// on *flat* parameter/gradient vectors, and every layer exposes its state
/// through flat slices anyway.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// A tensor of zeros drawing its storage from a [`Workspace`](crate::Workspace) — bitwise
    /// identical to [`Tensor::zeros`], but reusing pooled capacity.
    pub fn zeros_in(dims: &[usize], ws: &mut crate::Workspace) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: ws.take_f32(n),
        }
    }

    /// A copy of `src` whose storage comes from a [`Workspace`](crate::Workspace).
    pub fn clone_in(src: &Tensor, ws: &mut crate::Workspace) -> Self {
        let mut data = ws.take_f32_uninit(src.numel());
        data.copy_from_slice(&src.data);
        Tensor {
            shape: src.shape.clone(),
            data,
        }
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {:?}",
            data.len(),
            dims
        );
        Tensor { shape, data }
    }

    /// The `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Borrow the shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.shape.0
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Flat read-only view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret with a new shape of equal element count.
    ///
    /// # Panics
    /// Panics if element counts differ.
    pub fn reshape(mut self, dims: &[usize]) -> Self {
        let new = Shape::new(dims);
        assert_eq!(new.numel(), self.numel(), "reshape changes element count");
        self.shape = new;
        self
    }

    /// Set all elements to zero, keeping the allocation.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// `self += other` element-wise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` (BLAS axpy) over the flat buffers.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.numel(), other.numel(), "axpy length mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiply every element by `s`.
    pub fn scale(&mut self, s: f32) {
        self.data.iter_mut().for_each(|x| *x *= s);
    }

    /// Element-wise product into a new tensor.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean norm of the flat vector.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Index of the maximum element (first on ties); `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Row `i` of a 2-D tensor as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.shape.ndim(), 2, "row() requires a matrix");
        let cols = self.shape.dim(1);
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Flat offset of `[n, c, h, w]` in an NCHW tensor.
    #[inline]
    pub fn idx4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        let d = &self.shape.0;
        debug_assert_eq!(d.len(), 4);
        ((n * d[1] + c) * d[2] + h) * d[3] + w
    }

    /// Element at `[n, c, h, w]`.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.idx4(n, c, h, w)]
    }

    /// True when every pair of elements differs by at most `tol`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_full_eye() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Tensor::full(&[4], 2.5);
        assert!(f.as_slice().iter().all(|&x| x == 2.5));
        let e = Tensor::eye(3);
        assert_eq!(e.sum(), 3.0);
        assert_eq!(e.at_mat(1, 1), 1.0);
        assert_eq!(e.at_mat(0, 1), 0.0);
    }

    impl Tensor {
        fn at_mat(&self, r: usize, c: usize) -> f32 {
            self.row(r)[c]
        }
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_checks_length() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]).reshape(&[3, 2]);
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.row(2), &[5., 6.]);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Tensor::from_vec(vec![1., 2.], &[2]);
        let b = Tensor::from_vec(vec![3., 4.], &[2]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[4., 6.]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[5.5, 8.]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[11., 16.]);
        let h = a.hadamard(&b);
        assert_eq!(h.as_slice(), &[33., 64.]);
        a.zero_();
        assert_eq!(a.sum(), 0.0);
    }

    #[test]
    fn norm_and_argmax() {
        let t = Tensor::from_vec(vec![3., 4.], &[2]);
        assert!((t.norm() - 5.0).abs() < 1e-6);
        assert_eq!(t.argmax(), Some(1));
        let ties = Tensor::from_vec(vec![7., 7.], &[2]);
        assert_eq!(ties.argmax(), Some(0), "first index wins ties");
        assert_eq!(Tensor::zeros(&[0]).argmax(), None);
    }

    #[test]
    fn idx4_is_nchw_row_major() {
        let t = Tensor::zeros(&[2, 3, 4, 5]);
        assert_eq!(t.idx4(0, 0, 0, 0), 0);
        assert_eq!(t.idx4(0, 0, 0, 1), 1);
        assert_eq!(t.idx4(0, 0, 1, 0), 5);
        assert_eq!(t.idx4(0, 1, 0, 0), 20);
        assert_eq!(t.idx4(1, 0, 0, 0), 60);
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0005, 2.0], &[2]);
        assert!(a.allclose(&b, 1e-3));
        assert!(!a.allclose(&b, 1e-5));
        let c = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        assert!(!a.allclose(&c, 1.0), "shape mismatch is never close");
    }
}

//! Learning-rate and communication-interval schedules.
//!
//! The paper trains at constant γ and notes (§II-B) that with a constant
//! rate "there is a limit on how close the algorithm can reach to the
//! optimum without lowering the learning rate". These schedules let the
//! experiments probe exactly that: decay recovers the lost accuracy floor,
//! warmup stabilizes large effective batches (large `p·T`).
//!
//! [`TSchedule`] and [`SyncPolicy`] play the same role for the *other*
//! knob in Algorithm 1: the aggregation interval `T`. A fixed schedule is
//! the paper's setting; the adaptive schedule grows `T` when the sync
//! signal (e.g. the Local-SGD average-displacement norm) plateaus —
//! communicating less as training stabilizes, per Stich's Local SGD
//! analysis.

/// How the local learning rate evolves over collective epochs.
///
/// ```
/// use sasgd_core::LrSchedule;
/// let s = LrSchedule::StepDecay { every: 10, factor: 0.5 };
/// assert_eq!(s.at(0.1, 0.0), 0.1);
/// assert!((s.at(0.1, 10.0) - 0.05).abs() < 1e-8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// The paper's setting: γ fixed for the whole run.
    Constant,
    /// Multiply by `factor` every `every` epochs.
    StepDecay {
        /// Epochs between decays.
        every: usize,
        /// Multiplier applied at each decay (0 < factor < 1).
        factor: f32,
    },
    /// `γ / (1 + rate·epoch)` — the classic Robbins–Monro-style decay the
    /// asymptotic theory assumes.
    InvEpoch {
        /// Decay speed.
        rate: f32,
    },
    /// Linear ramp from `γ·start_frac` to γ over `epochs` epochs, constant
    /// afterwards.
    Warmup {
        /// Ramp length in epochs.
        epochs: usize,
        /// Starting fraction of γ (0 ≤ start_frac ≤ 1).
        start_frac: f32,
    },
}

impl LrSchedule {
    /// The learning rate at (fractional) `epoch`, given the base rate.
    pub fn at(&self, base: f32, epoch: f64) -> f32 {
        let epoch = epoch.max(0.0);
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::StepDecay { every, factor } => {
                assert!(every > 0, "decay interval must be positive");
                // lint:allow(float-cast): floor of a small nonnegative
                // epoch count — exact for any realistic training length.
                let steps = (epoch / every as f64).floor() as i32;
                base * factor.powi(steps)
            }
            LrSchedule::InvEpoch { rate } => base / (1.0 + rate * epoch as f32),
            LrSchedule::Warmup { epochs, start_frac } => {
                if epochs == 0 || epoch >= epochs as f64 {
                    base
                } else {
                    let frac =
                        start_frac as f64 + (1.0 - start_frac as f64) * epoch / epochs as f64;
                    base * frac as f32
                }
            }
        }
    }
}

/// How the aggregation interval `T` evolves over communication rounds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TSchedule {
    /// `T` fixed for the whole run (`t = 0` means "never communicate").
    Fixed {
        /// Local steps between aggregations.
        t: usize,
    },
    /// Start at `t0` and double `T` (capped at `t_max`) whenever the sync
    /// signal fails to improve by a relative `rel_improve` margin for
    /// `patience` consecutive rounds. `T` only ever grows, so an adaptive
    /// run never communicates more often than `Fixed { t: t0 }` over the
    /// same number of local steps.
    AdaptivePlateau {
        /// Initial interval (must be ≥ 1).
        t0: usize,
        /// Upper bound on the interval.
        t_max: usize,
        /// Non-improving rounds tolerated before doubling.
        patience: u32,
        /// Relative improvement threshold (e.g. 0.05 = 5%).
        rel_improve: f32,
    },
}

/// The live state of a [`TSchedule`]: owns the current interval and the
/// plateau detector. One policy instance drives one run; both backends
/// feed it the same per-round signals so its decisions replay exactly.
#[derive(Clone, Debug)]
pub struct SyncPolicy {
    schedule: TSchedule,
    current: usize,
    best: f32,
    plateau: u32,
}

impl SyncPolicy {
    /// Policy with a fixed interval (`t = 0` disables communication).
    pub fn fixed(t: usize) -> Self {
        SyncPolicy::new(TSchedule::Fixed { t })
    }

    /// Policy driven by `schedule`, starting at its initial interval.
    pub fn new(schedule: TSchedule) -> Self {
        let current = match schedule {
            TSchedule::Fixed { t } => t,
            TSchedule::AdaptivePlateau { t0, t_max, .. } => {
                assert!(t0 >= 1, "adaptive schedule needs t0 >= 1");
                assert!(t_max >= t0, "t_max must be >= t0");
                t0
            }
        };
        SyncPolicy {
            schedule,
            current,
            best: f32::INFINITY,
            plateau: 0,
        }
    }

    /// The interval in force for the next round.
    pub fn current_t(&self) -> usize {
        self.current
    }

    /// Feed the end-of-round sync signal (`None` = strategy emits none;
    /// the interval then never adapts). Lower is better; an improvement
    /// must beat the best seen so far by the relative margin to reset the
    /// plateau counter.
    pub fn observe_round(&mut self, signal: Option<f32>) {
        let TSchedule::AdaptivePlateau {
            t_max,
            patience,
            rel_improve,
            ..
        } = self.schedule
        else {
            return;
        };
        let Some(signal) = signal else { return };
        if signal < self.best * (1.0 - rel_improve) {
            self.best = signal;
            self.plateau = 0;
        } else {
            self.plateau += 1;
            if self.plateau >= patience && self.current < t_max {
                self.current = (self.current * 2).min(t_max);
                self.plateau = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        let s = LrSchedule::Constant;
        assert_eq!(s.at(0.1, 0.0), 0.1);
        assert_eq!(s.at(0.1, 99.0), 0.1);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay {
            every: 10,
            factor: 0.5,
        };
        assert_eq!(s.at(0.1, 0.0), 0.1);
        assert_eq!(s.at(0.1, 9.9), 0.1);
        assert!((s.at(0.1, 10.0) - 0.05).abs() < 1e-8);
        assert!((s.at(0.1, 25.0) - 0.025).abs() < 1e-8);
    }

    #[test]
    fn inv_epoch_decays_hyperbolically() {
        let s = LrSchedule::InvEpoch { rate: 1.0 };
        assert_eq!(s.at(0.2, 0.0), 0.2);
        assert!((s.at(0.2, 1.0) - 0.1).abs() < 1e-8);
        assert!((s.at(0.2, 3.0) - 0.05).abs() < 1e-8);
    }

    #[test]
    fn warmup_ramps_then_holds() {
        let s = LrSchedule::Warmup {
            epochs: 4,
            start_frac: 0.25,
        };
        assert!((s.at(0.1, 0.0) - 0.025).abs() < 1e-8);
        let mid = s.at(0.1, 2.0);
        assert!(mid > 0.025 && mid < 0.1);
        assert_eq!(s.at(0.1, 4.0), 0.1);
        assert_eq!(s.at(0.1, 50.0), 0.1);
    }

    #[test]
    fn zero_length_warmup_is_constant() {
        let s = LrSchedule::Warmup {
            epochs: 0,
            start_frac: 0.5,
        };
        assert_eq!(s.at(0.1, 0.0), 0.1);
    }

    #[test]
    fn negative_epoch_clamped() {
        let s = LrSchedule::InvEpoch { rate: 1.0 };
        assert_eq!(s.at(0.1, -5.0), 0.1);
    }

    #[test]
    fn fixed_policy_never_moves() {
        let mut p = SyncPolicy::fixed(5);
        assert_eq!(p.current_t(), 5);
        for s in [1.0, 1.0, 1.0, 1.0] {
            p.observe_round(Some(s));
        }
        assert_eq!(p.current_t(), 5);
    }

    #[test]
    fn adaptive_doubles_on_plateau_and_caps() {
        let mut p = SyncPolicy::new(TSchedule::AdaptivePlateau {
            t0: 2,
            t_max: 8,
            patience: 2,
            rel_improve: 0.05,
        });
        assert_eq!(p.current_t(), 2);
        p.observe_round(Some(1.0)); // first signal: improves on infinity
        p.observe_round(Some(0.99)); // < 5% better: plateau 1
        assert_eq!(p.current_t(), 2);
        p.observe_round(Some(0.98)); // plateau 2 -> double
        assert_eq!(p.current_t(), 4);
        p.observe_round(Some(0.97));
        p.observe_round(Some(0.97)); // -> 8 (cap)
        assert_eq!(p.current_t(), 8);
        p.observe_round(Some(0.97));
        p.observe_round(Some(0.97)); // at cap: stays
        assert_eq!(p.current_t(), 8);
    }

    #[test]
    fn adaptive_resets_plateau_on_real_improvement() {
        let mut p = SyncPolicy::new(TSchedule::AdaptivePlateau {
            t0: 4,
            t_max: 16,
            patience: 2,
            rel_improve: 0.1,
        });
        p.observe_round(Some(1.0));
        p.observe_round(Some(0.95)); // plateau 1
        p.observe_round(Some(0.5)); // > 10% better: reset
        p.observe_round(Some(0.49)); // plateau 1 again
        assert_eq!(p.current_t(), 4);
    }

    #[test]
    fn missing_signal_never_adapts() {
        let mut p = SyncPolicy::new(TSchedule::AdaptivePlateau {
            t0: 1,
            t_max: 64,
            patience: 1,
            rel_improve: 0.5,
        });
        for _ in 0..10 {
            p.observe_round(None);
        }
        assert_eq!(p.current_t(), 1);
    }
}

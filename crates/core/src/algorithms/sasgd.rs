//! SASGD — Algorithm 1 of the paper, as an engine strategy.
//!
//! `p` learners over disjoint data shards. Each learner runs `T` local
//! minibatch steps at rate `γ`, accumulating raw gradients into `gs`; a
//! global allreduce then sums the `gs` of all learners and every learner
//! applies `x ← x − γp·Σgs` to the *pre-interval* parameters before
//! continuing from the common `x`. The interval `T` amortizes the
//! communication; the allreduce replaces the parameter server.
//!
//! Bulk-synchrony means each aggregation waits for the slowest learner —
//! the straggler penalty is charged to every learner's virtual clock as
//! communication (wait) time, matching how the paper measures "time spent
//! in communication" from a learner's perspective.
//!
//! With `compression`, each learner's accumulated gradient is compressed
//! (with error feedback) before the allreduce; the aggregation cost is
//! priced by the compressor's wire size, and on the threaded backend TopK
//! payloads actually travel sparse.

use sasgd_comm::sparse::{tree_combine_bounded, SparseLevelProfile, SparseVec};
use sasgd_data::Dataset;
use sasgd_nn::Model;

use crate::algorithms::GammaP;
use crate::compress::{Compression, KState};
use crate::engine::{simulated, AggregationStrategy};
use crate::history::{History, SparsitySample, StalenessStats, WireStats, MAX_SPARSITY_SAMPLES};
use crate::trainer::{Learner, TrainConfig};

/// Algorithm 1 with optional compressed aggregation.
pub(crate) struct SasgdStrategy {
    p: usize,
    t: usize,
    gamma_p: GammaP,
    compression: Option<Compression>,
    /// The shared (pre-interval) parameter vector `x`.
    x: Vec<f32>,
    /// Error-feedback residuals, one per learner, carried across intervals.
    residuals: Vec<Vec<f32>>,
    /// Per-learner k-schedule state (compressed runs only).
    kstates: Vec<KState>,
    /// Per-sync compression telemetry, drained into [`History`].
    samples: Vec<SparsitySample>,
    /// Accumulated per-tree-level wire profile (sparse aggregation only) —
    /// the exact element counts the threaded backend's counters measure.
    profile: SparseLevelProfile,
    /// Sync rounds completed.
    rounds: u64,
    /// Cost of one (possibly compressed) allreduce.
    ar_seconds: f64,
    /// Parameter count (for wire accounting).
    m: usize,
}

impl SasgdStrategy {
    pub(crate) fn new(
        p: usize,
        t: usize,
        gamma_p: GammaP,
        compression: Option<Compression>,
    ) -> Self {
        assert!(p >= 1, "need at least one learner");
        assert!(t >= 1, "aggregation interval must be positive");
        SasgdStrategy {
            p,
            t,
            gamma_p,
            compression,
            x: Vec::new(),
            residuals: Vec::new(),
            kstates: Vec::new(),
            samples: Vec::new(),
            profile: SparseLevelProfile::default(),
            rounds: 0,
            ar_seconds: 0.0,
            m: 0,
        }
    }

    /// Record one learner's compression outcome for the sparsity series.
    fn push_sample(&mut self, rank: usize, k_eff: usize, residual_norm: f64) {
        if self.samples.len() < MAX_SPARSITY_SAMPLES {
            self.samples.push(SparsitySample {
                round: self.rounds,
                rank,
                k_eff,
                // lint:allow(float-cast): telemetry narrowing — the norm is
                // accumulated in f64 for order-stability, reported in f32.
                residual_norm: residual_norm as f32,
            });
        }
    }
}

impl AggregationStrategy for SasgdStrategy {
    fn label(&self) -> String {
        let (p, t) = (self.p, self.t);
        match self.compression {
            Some(_) => format!("SASGD-compressed(p={p},T={t})"),
            None => format!("SASGD(p={p},T={t})"),
        }
    }

    fn p(&self) -> usize {
        self.p
    }

    fn sync_interval(&self) -> usize {
        self.t
    }

    fn setup(&mut self, factory: &mut dyn FnMut() -> Model, x0: &[f32], cfg: &TrainConfig) -> f64 {
        self.m = x0.len();
        self.x = x0.to_vec();
        self.ar_seconds = match self.compression {
            Some(c) => {
                cfg.cost
                    .allreduce_tree_elements(c.wire_elements(self.m), self.p)
                    .seconds
            }
            None => cfg.cost.allreduce_tree(self.m, self.p).seconds,
        };
        if let Some(c) = self.compression {
            self.residuals = (0..self.p).map(|_| vec![0.0f32; self.m]).collect();
            // The layer-wise schedule needs the model's parameter-block
            // map; one throwaway replica yields the layout.
            let blocks = if matches!(c, Compression::Sparse { .. }) {
                factory().param_blocks()
            } else {
                Vec::new()
            };
            self.kstates = (0..self.p)
                .map(|_| KState::new(&c, blocks.clone()))
                .collect();
        }
        cfg.cost.broadcast(self.m, self.p)
    }

    fn sync(&mut self, learners: &mut [Learner], gamma_now: f32) {
        let gp = self.gamma_p.resolve(gamma_now, self.p);
        self.rounds += 1; // 1-based, matching the threaded backend's rounds
        match self.compression {
            Some(
                comp @ Compression::Sparse {
                    q8, union_bound, ..
                },
            ) => {
                // Sparse aggregation: compress per learner, combine in the
                // wire collective's order via the in-memory mirror, fold
                // trim spills back into the rank-local residuals.
                let t_max = learners.iter().map(|l| l.clock).fold(0.0_f64, f64::max);
                let p = learners.len();
                let mut svs = Vec::with_capacity(p);
                let mut bounds = Vec::with_capacity(p);
                for (r, l) in learners.iter().enumerate() {
                    let input: Vec<f32> =
                        l.gs.iter()
                            .zip(self.residuals[r].iter())
                            .map(|(a, b)| a + b)
                            .collect();
                    let c = comp.compress_with(&input, &mut self.kstates[r]);
                    self.residuals[r] = c.residual;
                    self.push_sample(r, c.k_eff, c.residual_norm);
                    bounds.push(if union_bound { Some(c.k_budget) } else { None });
                    svs.push(SparseVec::from_dense(&c.dense));
                }
                let (total, spills, profile) = tree_combine_bounded(svs, q8, &bounds);
                self.profile.merge(&profile);
                for (res, spill) in self.residuals.iter_mut().zip(&spills) {
                    for (&i, &v) in spill.idx.iter().zip(&spill.val) {
                        res[i as usize] += v;
                    }
                }
                let g = total.to_dense();
                for (xi, &gv) in self.x.iter_mut().zip(&g) {
                    *xi -= gp * gv;
                }
                for l in learners.iter_mut() {
                    let wait = t_max - l.clock;
                    l.charge_comm(wait + self.ar_seconds);
                    l.model.write_params(&self.x);
                    l.gs.iter_mut().for_each(|g| *g = 0.0);
                }
            }
            _ => {
                let outcomes = aggregate(
                    learners,
                    &mut self.x,
                    gp,
                    self.ar_seconds,
                    self.compression,
                    &mut self.residuals,
                );
                for (r, (k_eff, residual_norm)) in outcomes.into_iter().enumerate() {
                    self.push_sample(r, k_eff, residual_norm);
                }
            }
        }
    }

    fn sparsity_series(&mut self) -> Vec<SparsitySample> {
        std::mem::take(&mut self.samples)
    }

    fn sparse_levels(&self) -> SparseLevelProfile {
        self.profile.clone()
    }

    fn staleness(&self, syncs: u64) -> Option<StalenessStats> {
        // SASGD's staleness is T by construction — record it so staleness
        // reports can compare against the measured async distributions.
        Some(StalenessStats {
            mean: self.t as f64,
            max: self.t as u64,
            pushes: syncs,
        })
    }

    fn wire(&self, syncs: u64) -> Option<WireStats> {
        // The analytic counterpart of the threaded backend's counters:
        // one broadcast of x0 ((p−1)·m elements over p−1 messages) plus,
        // per aggregation, a tree allreduce. Dense, Uniform8Bit, and
        // Sparse are *exact* (dense and Uniform8Bit from the closed-form
        // round cost, Sparse from the accumulated per-level profile);
        // TopK keeps the documented full-k estimate.
        let p1 = (self.p - 1) as u64;
        let bcast = p1 * self.m as u64;
        match self.compression {
            None => Some(WireStats {
                elements: bcast + 2 * p1 * self.m as u64 * syncs,
                messages: p1 + 2 * p1 * syncs,
            }),
            Some(c @ Compression::Uniform8Bit) => {
                let (round, _) = c.round_wire_bounds(self.m, self.p);
                Some(WireStats {
                    elements: bcast + round * syncs,
                    messages: p1 + 2 * p1 * syncs,
                })
            }
            Some(Compression::Sparse { .. }) => Some(WireStats {
                elements: bcast + self.profile.total_elements(),
                messages: p1 + self.profile.total_messages(),
            }),
            Some(c @ Compression::TopK { .. }) => {
                let per_ar = c.wire_elements(self.m);
                Some(WireStats {
                    // lint:allow(float-cast): wire accounting — element
                    // counts are integers well below 2^53, so the f64
                    // round-trip is exact.
                    elements: bcast + 2 * p1 * (per_ar * syncs as f64) as u64,
                    messages: p1 + 2 * p1 * syncs,
                })
            }
        }
    }
}

/// One global aggregation: barrier (wait for the slowest learner),
/// allreduce of the (optionally compressed) accumulated gradients, global
/// step, redistribution. Returns each learner's `(k_eff, residual_norm)`
/// compression outcome (empty when uncompressed).
pub(crate) fn aggregate(
    learners: &mut [Learner],
    x: &mut [f32],
    gamma_p: f32,
    allreduce_seconds: f64,
    compression: Option<Compression>,
    residuals: &mut [Vec<f32>],
) -> Vec<(usize, f64)> {
    let t_max = learners.iter().map(|l| l.clock).fold(0.0_f64, f64::max);
    let mut outcomes = Vec::new();
    // Sum gs across learners in binomial-tree order — the exact reduction
    // order of sasgd-comm's allreduce, so the threaded backend reproduces
    // these parameters bit for bit.
    let bufs: Vec<Vec<f32>> = match compression {
        None => learners.iter().map(|l| l.gs.clone()).collect(),
        Some(comp) => learners
            .iter()
            .zip(residuals.iter_mut())
            .map(|(l, res)| {
                let input: Vec<f32> = l.gs.iter().zip(res.iter()).map(|(a, b)| a + b).collect();
                let c = comp.compress(&input);
                *res = c.residual;
                outcomes.push((c.k_eff, c.residual_norm));
                c.dense
            })
            .collect(),
    };
    let total = crate::engine::tree_reduce(bufs);
    for (xi, &g) in x.iter_mut().zip(&total) {
        *xi -= gamma_p * g;
    }
    for l in learners.iter_mut() {
        let wait = t_max - l.clock;
        l.charge_comm(wait + allreduce_seconds);
        l.model.write_params(x);
        l.gs.iter_mut().for_each(|g| *g = 0.0);
    }
    outcomes
}

/// Run SASGD on the simulated backend. `T = 1` is classic bulk-synchronous
/// SGD; `p = 1` degrades to sequential SGD (with the global step folded
/// in).
#[allow(clippy::too_many_arguments)] // mirrors the Algorithm variant's fields
pub(crate) fn run(
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
    t: usize,
    gamma_p: GammaP,
    compression: Option<Compression>,
) -> History {
    let mut s = SasgdStrategy::new(p, t, gamma_p, compression);
    simulated::run_auto(&mut s, factory, train_set, test_set, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_data::cifar_like::{generate, CifarLikeConfig};
    use sasgd_nn::models;
    use sasgd_simnet::JitterModel;
    use sasgd_tensor::SeedRng;

    fn quiet_cfg(epochs: usize, gamma: f32) -> TrainConfig {
        let mut cfg = TrainConfig::new(epochs, 8, gamma, 42);
        cfg.jitter = JitterModel::none();
        cfg
    }

    #[test]
    fn learns_with_four_learners() {
        let (train, test) = generate(&CifarLikeConfig::tiny(160, 60, 3));
        let cfg = quiet_cfg(8, 0.05);
        let mut factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = run(&mut factory, &train, &test, &cfg, 4, 2, GammaP::OverP, None);
        assert!(h.final_test_acc() > 0.5, "acc {}", h.final_test_acc());
        assert!(
            h.records.last().expect("r").comm_seconds > 0.0,
            "p>1 must communicate"
        );
    }

    #[test]
    fn all_learners_hold_identical_params_after_sync() {
        let (train, test) = generate(&CifarLikeConfig::tiny(64, 16, 2));
        let cfg = quiet_cfg(1, 0.05);
        // Run manually to inspect: easiest is T=1 where every step syncs,
        // so learner 0's history must equal a rerun's.
        let mut f1 = || models::tiny_cnn(2, &mut SeedRng::new(3));
        let h1 = run(&mut f1, &train, &test, &cfg, 2, 1, GammaP::OverP, None);
        let mut f2 = || models::tiny_cnn(2, &mut SeedRng::new(3));
        let h2 = run(&mut f2, &train, &test, &cfg, 2, 1, GammaP::OverP, None);
        assert_eq!(
            h1.records.last().expect("r").train_loss,
            h2.records.last().expect("r").train_loss
        );
    }

    #[test]
    fn p1_t1_matches_sequential_trajectory() {
        // Algorithm 1 applies local steps to a scratch copy x' and the
        // global step to the pre-interval x. With p=1, T=1, local γ=0 and
        // γp=γ, every aggregation performs exactly x ← x − γ·g — i.e.
        // sequential SGD. The trajectories must coincide bitwise.
        let (train, test) = generate(&CifarLikeConfig::tiny(48, 16, 2));
        let sasgd_cfg = quiet_cfg(3, 0.0);
        let mut f1 = || models::tiny_cnn(2, &mut SeedRng::new(9));
        let h_sasgd = run(
            &mut f1,
            &train,
            &test,
            &sasgd_cfg,
            1,
            1,
            GammaP::Fixed(0.05),
            None,
        );
        let seq_cfg = quiet_cfg(3, 0.05);
        let mut f2 = || models::tiny_cnn(2, &mut SeedRng::new(9));
        let h_seq = crate::algorithms::sequential::run(&mut f2, &train, &test, &seq_cfg);
        for (a, b) in h_sasgd.records.iter().zip(&h_seq.records) {
            assert_eq!(a.train_loss, b.train_loss, "trajectories must coincide");
            assert_eq!(a.test_acc, b.test_acc);
        }
    }

    #[test]
    fn larger_t_means_less_comm_time() {
        // With jitter disabled every learner's virtual clock advances
        // identically, so the barrier wait is exactly zero and learner 0's
        // communication time must equal the initial broadcast plus one
        // tree allreduce per aggregation — ⌊steps/T⌋ of them, where
        // steps = epochs · ⌊(n/p)/M⌋. This pins the T-amortization claim
        // to the cost model instead of a magic ratio.
        let (train, test) = generate(&CifarLikeConfig::tiny(160, 20, 2));
        let cfg = quiet_cfg(2, 0.02);
        let p = 4;
        let m = models::tiny_cnn(2, &mut SeedRng::new(1)).param_len();
        let bcast = cfg.cost.broadcast(m, p);
        let ar = cfg.cost.allreduce_tree(m, p).seconds;
        let steps = cfg.epochs * (train.len() / p / cfg.batch_size);
        let mut comm = Vec::new();
        for t in [1usize, 5] {
            let mut f = || models::tiny_cnn(2, &mut SeedRng::new(1));
            let h = run(&mut f, &train, &test, &cfg, p, t, GammaP::OverP, None);
            let got = h.records.last().expect("r").comm_seconds;
            let expect = bcast + (steps / t) as f64 * ar;
            assert!(
                (got - expect).abs() <= 1e-9 * expect,
                "T={t}: comm {got} should equal broadcast + {} allreduces = {expect}",
                steps / t
            );
            comm.push(got);
        }
        assert!(
            comm[1] < comm[0],
            "T=5 comm {} should be below T=1 comm {}",
            comm[1],
            comm[0]
        );
    }

    #[test]
    fn simulated_wire_accounting_shrinks_under_topk() {
        let (train, test) = generate(&CifarLikeConfig::tiny(64, 16, 2));
        let cfg = quiet_cfg(1, 0.02);
        let mut f1 = || models::tiny_cnn(2, &mut SeedRng::new(3));
        let dense = run(&mut f1, &train, &test, &cfg, 2, 2, GammaP::OverP, None);
        let mut f2 = || models::tiny_cnn(2, &mut SeedRng::new(3));
        let sparse = run(
            &mut f2,
            &train,
            &test,
            &cfg,
            2,
            2,
            GammaP::OverP,
            Some(Compression::TopK { ratio: 0.1 }),
        );
        let (d, s) = (dense.wire.expect("wire"), sparse.wire.expect("wire"));
        assert!(
            s.elements < d.elements / 2,
            "TopK-10% wire {} vs dense {}",
            s.elements,
            d.elements
        );
    }

    #[test]
    #[should_panic(expected = "shards too small")]
    fn rejects_empty_per_learner_epochs() {
        let (train, test) = generate(&CifarLikeConfig::tiny(8, 4, 2));
        let cfg = quiet_cfg(1, 0.05);
        let mut f = || models::tiny_cnn(2, &mut SeedRng::new(1));
        run(&mut f, &train, &test, &cfg, 8, 1, GammaP::OverP, None);
    }
}

//! Tests for the extension features layered on the paper's core:
//! gradient compression, learning-rate schedules, staleness
//! instrumentation, and the empirical gradient-norm series.

use sasgd::core::algorithms::GammaP;
use sasgd::core::{train, Algorithm, Compression, LrSchedule, TrainConfig};
use sasgd::data::cifar_like::{generate, CifarLikeConfig};
use sasgd::nn::models;
use sasgd::simnet::JitterModel;
use sasgd::tensor::SeedRng;

fn cifar() -> (sasgd::data::Dataset, sasgd::data::Dataset) {
    generate(&CifarLikeConfig::tiny(160, 64, 3))
}

fn cfg(epochs: usize, gamma: f32) -> TrainConfig {
    let mut c = TrainConfig::new(epochs, 8, gamma, 42);
    c.jitter = JitterModel::none();
    c
}

#[test]
fn compressed_sasgd_learns_and_saves_traffic_time() {
    let (train_set, test_set) = cifar();
    let c = cfg(8, 0.05);
    let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(7));
    let plain = train(
        &mut f1,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 4,
            t: 2,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        &c,
    );
    let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(7));
    let topk = train(
        &mut f2,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 4,
            t: 2,
            gamma_p: GammaP::OverP,
            compression: Some(Compression::TopK { ratio: 0.1 }),
        },
        &c,
    );
    assert!(
        topk.final_test_acc() > 0.5,
        "top-k acc {:.2}",
        topk.final_test_acc()
    );
    // Within a few points of uncompressed accuracy (error feedback works).
    assert!(
        topk.final_test_acc() > plain.final_test_acc() - 0.15,
        "top-k {:.2} vs plain {:.2}",
        topk.final_test_acc(),
        plain.final_test_acc()
    );
    // And the virtual communication time shrinks. For this tiny test
    // model the allreduce is latency-bound so the saving is small but
    // strictly positive; the paper-scale factor is asserted analytically
    // in `compressed_comm_cost_reflects_wire_elements`.
    let plain_comm = plain.records.last().expect("r").comm_seconds;
    let topk_comm = topk.records.last().expect("r").comm_seconds;
    assert!(
        topk_comm < plain_comm,
        "compressed comm {topk_comm} vs plain {plain_comm}"
    );
}

#[test]
fn quantized_sasgd_tracks_plain_closely() {
    let (train_set, test_set) = cifar();
    let c = cfg(6, 0.05);
    let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(3));
    let plain = train(
        &mut f1,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 2,
            t: 2,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        &c,
    );
    let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(3));
    let q8 = train(
        &mut f2,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 2,
            t: 2,
            gamma_p: GammaP::OverP,
            compression: Some(Compression::Uniform8Bit),
        },
        &c,
    );
    assert!(
        (q8.final_test_acc() - plain.final_test_acc()).abs() < 0.1,
        "8-bit {:.2} vs plain {:.2}",
        q8.final_test_acc(),
        plain.final_test_acc()
    );
}

#[test]
fn step_decay_schedule_changes_late_trajectory_only() {
    let (train_set, test_set) = cifar();
    let mut constant = cfg(6, 0.05);
    constant.schedule = LrSchedule::Constant;
    let mut decayed = cfg(6, 0.05);
    decayed.schedule = LrSchedule::StepDecay {
        every: 3,
        factor: 0.1,
    };
    let algo = Algorithm::Sasgd {
        p: 2,
        t: 1,
        gamma_p: GammaP::OverP,
        compression: None,
    };
    let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(9));
    let a = train(&mut f1, &train_set, &test_set, &algo, &constant);
    let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(9));
    let b = train(&mut f2, &train_set, &test_set, &algo, &decayed);
    // Identical until the first decay boundary (epochs 1-3), different after.
    for e in 0..3 {
        assert_eq!(
            a.records[e].train_loss, b.records[e].train_loss,
            "epoch {e} should match"
        );
    }
    assert_ne!(
        a.records[5].train_loss, b.records[5].train_loss,
        "decay must alter the post-boundary trajectory"
    );
}

#[test]
fn warmup_schedule_trains_successfully() {
    let (train_set, test_set) = cifar();
    let mut c = cfg(8, 0.08);
    c.schedule = LrSchedule::Warmup {
        epochs: 3,
        start_frac: 0.1,
    };
    let mut f = || models::tiny_cnn(3, &mut SeedRng::new(4));
    let h = train(
        &mut f,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 4,
            t: 2,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        &c,
    );
    assert!(
        h.final_test_acc() > 0.5,
        "warmup acc {:.2}",
        h.final_test_acc()
    );
}

#[test]
fn staleness_is_t_for_sasgd_and_spreads_for_downpour() {
    let (train_set, test_set) = cifar();
    let mut c = cfg(4, 0.02);
    // Give learners real speed differences so async staleness varies.
    c.jitter = JitterModel {
        cv: 0.3,
        learner_spread: 0.3,
    };
    let t = 2;
    let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(5));
    let sasgd = train(
        &mut f1,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 4,
            t,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        &c,
    );
    let st = sasgd.staleness.expect("SASGD records staleness");
    assert_eq!(st.mean, t as f64, "SASGD staleness is exactly T");
    assert_eq!(st.max, t as u64);

    let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(5));
    let downpour = train(
        &mut f2,
        &train_set,
        &test_set,
        &Algorithm::Downpour {
            p: 4,
            t,
            staleness_gamma: false,
        },
        &c,
    );
    let sd = downpour.staleness.expect("Downpour records staleness");
    assert!(sd.pushes > 0);
    // With 4 async learners, typical staleness ≈ p−1 pushes and the max
    // exceeds the mean (speed spread ⇒ uneven staleness) — the paper's
    // "staleness is influenced by the relative processing speeds".
    assert!(sd.mean > 0.5, "mean staleness {}", sd.mean);
    assert!(
        (sd.max as f64) > sd.mean,
        "staleness spread: max {} vs mean {}",
        sd.max,
        sd.mean
    );
}

#[test]
fn lockstep_staleness_series_records_all_zero_tau() {
    // Under the lockstep cadence every observation is taken at the
    // barrier, so the measured τ is zero for every (round, rank) sample —
    // the series distinguishes "synchronous by construction" from the
    // async runs whose τ spreads.
    let (train_set, test_set) = cifar();
    let c = cfg(4, 0.05);
    let p = 4;
    let mut f = || models::tiny_cnn(3, &mut SeedRng::new(5));
    let h = train(
        &mut f,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p,
            t: 2,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        &c,
    );
    assert!(!h.staleness_series.is_empty(), "lockstep records samples");
    assert!(
        h.staleness_series.iter().all(|s| s.tau == 0),
        "lockstep τ must be identically zero"
    );
    for rank in 0..p {
        assert!(
            h.staleness_series.iter().any(|s| s.rank == rank),
            "rank {rank} missing from the series"
        );
    }
    // No staleness scaling in force: the effective rate is the scheduled γ.
    assert!(h.staleness_series.iter().all(|s| s.gamma_eff == 0.05));
}

#[test]
fn staleness_gamma_scales_effective_rate_by_measured_tau() {
    // Downpour with staleness-aware γ: the event engine measures τ per
    // push and the recorded effective rate must equal γ/(1+τ) exactly.
    let (train_set, test_set) = cifar();
    let mut c = cfg(4, 0.02);
    c.jitter = JitterModel {
        cv: 0.3,
        learner_spread: 0.3,
    };
    let mut f = || models::tiny_cnn(3, &mut SeedRng::new(5));
    let h = train(
        &mut f,
        &train_set,
        &test_set,
        &Algorithm::Downpour {
            p: 4,
            t: 2,
            staleness_gamma: true,
        },
        &c,
    );
    assert!(!h.staleness_series.is_empty());
    assert!(
        h.staleness_series.iter().any(|s| s.tau > 0),
        "4 async learners must observe staleness"
    );
    for s in &h.staleness_series {
        let expect = 0.02 / (1.0 + s.tau as f32);
        assert!(
            (s.gamma_eff - expect).abs() < 1e-7,
            "round {} rank {}: γ_eff {} vs γ/(1+{}) = {expect}",
            s.round,
            s.rank,
            s.gamma_eff,
            s.tau
        );
    }
}

#[test]
fn gradient_norm_series_decreases_during_training() {
    let (train_set, test_set) = cifar();
    let c = cfg(10, 0.05);
    let mut f = || models::tiny_cnn(3, &mut SeedRng::new(8));
    let h = train(&mut f, &train_set, &test_set, &Algorithm::Sequential, &c);
    let first = h.records.first().expect("r").grad_norm;
    let last = h.records.last().expect("r").grad_norm;
    assert!(first > 0.0, "gradient norm must be measured");
    assert!(
        last < first,
        "average gradient norm should fall as training converges: {first} -> {last}"
    );
}

#[test]
fn compressed_comm_cost_reflects_wire_elements() {
    // The analytic side: top-10 % wire volume prices 5× cheaper than dense
    // in the tree-allreduce cost model.
    use sasgd::simnet::CostModel;
    let cost = CostModel::paper_testbed();
    let m = 506_378;
    let dense = cost.allreduce_tree(m, 8).seconds;
    let sparse = cost
        .allreduce_tree_elements(Compression::TopK { ratio: 0.1 }.wire_elements(m), 8)
        .seconds;
    assert!(sparse < dense * 0.4, "sparse {sparse} vs dense {dense}");
}

// virtual-path: crates/comm/src/relay.rs
//! Bad fixture: swallowing comm failures in library code. `recv` can
//! return `Timeout`/`PeerGone` at runtime — unwrapping turns an expected
//! fault into a panic that takes the whole rank down.

pub fn relay(t: &MockTransport, from: usize, to: usize, tag: u64) {
    let msg = t.recv(from, tag).unwrap();
    t.send(to, tag, msg).expect("send failed");
}

//! Sparse wire format and sparse tree collectives.
//!
//! Top-k gradient compression only pays off if the *wire* carries the
//! sparse form. This module gives the comm substrate an index/value
//! encoding and a binomial-tree allreduce over it, so compressed SASGD on
//! the threaded backend moves `O(k)` elements per hop instead of `O(m)` —
//! and the traffic counters record the real (compressed) sizes.
//!
//! The reduction mirrors [`crate::collectives::reduce_tree`]'s combine order
//! exactly (accumulated self `+=` incoming child, children in ascending
//! bit order), so a sparse allreduce of vectors produces the same sums, bit
//! for bit, as the dense tree allreduce of their densified forms — with one
//! IEEE corner: a coordinate whose every contribution is `-0.0` densifies
//! to `+0.0` here (`-0.0` entries are structurally absent) while a dense
//! reduction keeps `-0.0`. Gradient payloads never hit it; tests exclude
//! `-0.0` explicitly.
//!
//! Wire encoding inside the existing `Vec<f32>` message type:
//! `[len, nnz, idx..., val...]` with `len`/`nnz`/indices bit-cast from
//! `u32` via [`f32::from_bits`] (exact round-trip; an index would need to
//! exceed 2³¹ before its bit pattern could collide with a NaN).
//!
//! The composed codec [`SparseVec8`] additionally quantizes the value
//! lane to 8 bits (`[len, nnz, scale, idx..., q-packed...]`, four `i8`
//! per `f32` slot, ~`k + k/4` elements instead of `2k`). It only ships
//! values that already sit exactly on the `q·scale` grid — compression
//! quantizes, the wire just transports — so the receiver's `q·scale`
//! reconstruction is bitwise identical to the sender's dense form and
//! the tree reduce stays a plain f32 sum.
//!
//! [`sparse_allreduce_tree_v2`] layers two things on the v1 collective:
//! a per-level wire profile ([`SparseLevelProfile`], measuring how the
//! index union grows with tree depth) and an optional union bound that
//! re-TopKs each merged partial, folding the trimmed mass back to the
//! caller as a sparse *spill* for its error-feedback residual — nothing
//! is silently lost. [`tree_combine_bounded`] is the in-memory mirror of
//! the same combine-and-trim order for the simulated backend.
//!
//! [`q8_allreduce_tree`] gives dense 8-bit quantization a real wire form:
//! leaf sends travel as packed `[len, scale, q-packed]` frames
//! (`2 + ⌈m/4⌉` elements), merged partials and the result broadcast stay
//! dense f32 — bitwise identical to the dense tree over the same
//! quantized inputs.

use crate::collectives::broadcast;
use crate::transport::Transport;
use crate::world::CommError;

/// Elements of a [`SparseVec`] wire frame carrying `nnz` entries.
pub fn sparse_frame_elements(nnz: usize) -> usize {
    2 + 2 * nnz
}

/// Elements of a [`SparseVec8`] wire frame carrying `nnz` entries.
pub fn sparse8_frame_elements(nnz: usize) -> usize {
    3 + nnz + nnz.div_ceil(4)
}

/// Elements of a packed dense 8-bit frame (`[len, scale, q-packed...]`)
/// for an `m`-element vector.
pub fn dense8_frame_elements(m: usize) -> usize {
    2 + m.div_ceil(4)
}

/// Ranking magnitude for union-bound trimming: NaN maps to +∞ so a
/// poisoned coordinate is never silently trimmed away.
fn trim_mag(v: f32) -> f32 {
    if v.is_nan() {
        f32::INFINITY
    } else {
        v.abs()
    }
}

/// A sparse view of an `m`-element `f32` vector: sorted indices plus
/// values. Zero values may appear (sums that cancel stay represented so
/// repeated merges keep the dense addition structure); `-0.0` never enters
/// through [`SparseVec::from_dense`].
#[derive(Clone, Debug, PartialEq)]
pub struct SparseVec {
    /// Dense length.
    pub len: u32,
    /// Strictly increasing coordinate indices.
    pub idx: Vec<u32>,
    /// Values, parallel to `idx`.
    pub val: Vec<f32>,
}

impl SparseVec {
    /// Extract the nonzero coordinates of `dense` (`±0.0` excluded).
    pub fn from_dense(dense: &[f32]) -> Self {
        assert!(dense.len() <= u32::MAX as usize, "vector too long for wire");
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                idx.push(i as u32);
                val.push(v);
            }
        }
        SparseVec {
            len: dense.len() as u32,
            idx,
            val,
        }
    }

    /// Stored entries (including exact-zero sums).
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Densify.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len as usize];
        for (&i, &v) in self.idx.iter().zip(&self.val) {
            out[i as usize] = v;
        }
        out
    }

    /// Merge-add `other` into `self` (`self[i] += other[i]` on shared
    /// coordinates, union elsewhere) — the sparse mirror of the dense
    /// reduce's `a += b`.
    pub fn add_assign(&mut self, other: &SparseVec) {
        assert_eq!(self.len, other.len, "length mismatch in sparse add");
        let (n_a, n_b) = (self.idx.len(), other.idx.len());
        let mut idx = Vec::with_capacity(n_a + n_b);
        let mut val = Vec::with_capacity(n_a + n_b);
        let (mut a, mut b) = (0usize, 0usize);
        while a < n_a && b < n_b {
            match self.idx[a].cmp(&other.idx[b]) {
                std::cmp::Ordering::Less => {
                    idx.push(self.idx[a]);
                    val.push(self.val[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    idx.push(other.idx[b]);
                    val.push(other.val[b]);
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    idx.push(self.idx[a]);
                    val.push(self.val[a] + other.val[b]);
                    a += 1;
                    b += 1;
                }
            }
        }
        idx.extend_from_slice(&self.idx[a..]);
        val.extend_from_slice(&self.val[a..]);
        idx.extend_from_slice(&other.idx[b..]);
        val.extend_from_slice(&other.val[b..]);
        self.idx = idx;
        self.val = val;
    }

    /// Encode as a `Vec<f32>` message: `[len, nnz, idx..., val...]`,
    /// integers bit-cast.
    pub fn encode(&self) -> Vec<f32> {
        let nnz = self.idx.len();
        let mut out = Vec::with_capacity(2 + 2 * nnz);
        out.push(f32::from_bits(self.len));
        out.push(f32::from_bits(nnz as u32));
        out.extend(self.idx.iter().map(|&i| f32::from_bits(i)));
        out.extend_from_slice(&self.val);
        out
    }

    /// Decode an [`encode`](SparseVec::encode)d message.
    ///
    /// # Panics
    /// Panics if the buffer is malformed.
    pub fn decode(buf: &[f32]) -> Self {
        assert!(buf.len() >= 2, "sparse message too short");
        let len = buf[0].to_bits();
        let nnz = buf[1].to_bits() as usize;
        assert_eq!(buf.len(), 2 + 2 * nnz, "sparse message length mismatch");
        let idx: Vec<u32> = buf[2..2 + nnz].iter().map(|v| v.to_bits()).collect();
        let val = buf[2 + nnz..].to_vec();
        SparseVec { len, idx, val }
    }
}

/// Tag space mirroring `collectives::tag` (kept private there).
fn tag(op: u64, phase: u64) -> u64 {
    (op << 4) | phase
}

/// Binomial-tree sum-reduce of sparse vectors to `root`, in the exact
/// combine order of [`crate::collectives::reduce_tree`]. On non-root ranks `sv`
/// is left as the partial this rank forwarded.
pub fn sparse_reduce_tree<T: Transport>(
    comm: &mut T,
    root: usize,
    sv: &mut SparseVec,
) -> Result<(), CommError> {
    let p = comm.size();
    if p == 1 {
        comm.next_op();
        return Ok(());
    }
    let op = comm.next_op();
    let vrank = (comm.rank() + p - root) % p;
    let mut bit = 1usize;
    while bit < p {
        if vrank & bit != 0 {
            let parent_v = vrank & !bit;
            let parent = (parent_v + root) % p;
            comm.send(parent, tag(op, 1), sv.encode())?;
            return Ok(());
        }
        let child_v = vrank | bit;
        if child_v < p {
            let child = (child_v + root) % p;
            let part = SparseVec::decode(&comm.recv(child, tag(op, 1))?);
            sv.add_assign(&part);
        }
        bit <<= 1;
    }
    Ok(())
}

/// Sparse allreduce (sum): sparse reduce to rank 0 plus broadcast of the
/// encoded result. Every rank returns with the full sparse sum; wire
/// traffic is `O(nnz)` per hop.
pub fn sparse_allreduce_tree<T: Transport>(
    comm: &mut T,
    sv: &mut SparseVec,
) -> Result<(), CommError> {
    sparse_reduce_tree(comm, 0, sv)?;
    let mut enc = sv.encode();
    broadcast(comm, 0, &mut enc)?;
    *sv = SparseVec::decode(&enc);
    Ok(())
}

/// A sparse vector with 8-bit quantized values: the composed
/// sparsify+quantize wire codec. Values are `q·scale` for integer
/// `q ∈ [-127, 127]`; the scale travels in the frame (it is *not*
/// recoverable from the quantized values, so it must be explicit).
#[derive(Clone, Debug, PartialEq)]
pub struct SparseVec8 {
    /// Dense length.
    pub len: u32,
    /// Quantization step.
    pub scale: f32,
    /// Strictly increasing coordinate indices.
    pub idx: Vec<u32>,
    /// Quantized values, parallel to `idx`.
    pub q: Vec<i8>,
}

impl SparseVec8 {
    /// Wrap a sparse vector whose values already sit exactly on the
    /// `q·scale` grid (the compressor quantized them). Debug builds
    /// assert the grid property: `round(v/scale)·scale` must reproduce
    /// `v` bit-for-bit, which is what makes the codec lossless on the
    /// wire.
    pub fn from_scaled(sv: &SparseVec, scale: f32) -> Self {
        let q = sv
            .val
            .iter()
            .map(|&v| {
                let q = (v / scale).round();
                debug_assert!(q.abs() <= 127.0, "value {v} off the 8-bit grid");
                debug_assert_eq!(
                    (q * scale).to_bits(),
                    v.to_bits(),
                    "value {v} not exactly q·scale"
                );
                // lint:allow(float-cast): |q| ≤ 127 by the grid property.
                q as i8
            })
            .collect();
        SparseVec8 {
            len: sv.len,
            scale,
            idx: sv.idx.clone(),
            q,
        }
    }

    /// Quantize an arbitrary sparse vector onto a fresh 8-bit grid
    /// (scale = maxabs/127, clamped away from zero). Lossy: round-trip
    /// error per entry is at most `scale/2`. NaN values map to `q = 0`.
    pub fn quantize(sv: &SparseVec) -> Self {
        let maxabs = sv.val.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let scale = (maxabs / 127.0).max(f32::MIN_POSITIVE);
        let q = sv
            .val
            .iter()
            .map(|&v| {
                if v.is_nan() {
                    0i8
                } else {
                    // lint:allow(float-cast): clamped to [-127, 127].
                    (v / scale).round().clamp(-127.0, 127.0) as i8
                }
            })
            .collect();
        SparseVec8 {
            len: sv.len,
            scale,
            idx: sv.idx.clone(),
            q,
        }
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Dequantize to the f32 sparse form: `q·scale` per entry, with
    /// `q = 0` reconstructing canonical `+0.0`.
    pub fn to_sparse(&self) -> SparseVec {
        let val = self
            .q
            .iter()
            .map(|&q| {
                if q == 0 {
                    0.0
                } else {
                    f32::from(q) * self.scale
                }
            })
            .collect();
        SparseVec {
            len: self.len,
            idx: self.idx.clone(),
            val,
        }
    }

    /// Encode as a `Vec<f32>` message: `[len, nnz, scale, idx...,
    /// q-packed...]` with four `i8` per `f32` slot (bit-cast via `u32`
    /// little-endian packing).
    pub fn encode(&self) -> Vec<f32> {
        let nnz = self.idx.len();
        let mut out = Vec::with_capacity(sparse8_frame_elements(nnz));
        out.push(f32::from_bits(self.len));
        out.push(f32::from_bits(nnz as u32));
        out.push(self.scale);
        out.extend(self.idx.iter().map(|&i| f32::from_bits(i)));
        for chunk in self.q.chunks(4) {
            let mut bytes = [0u8; 4];
            for (b, &qv) in bytes.iter_mut().zip(chunk) {
                *b = qv as u8;
            }
            out.push(f32::from_bits(u32::from_le_bytes(bytes)));
        }
        out
    }

    /// Decode an [`encode`](SparseVec8::encode)d message.
    ///
    /// # Panics
    /// Panics if the buffer is malformed.
    pub fn decode(buf: &[f32]) -> Self {
        assert!(buf.len() >= 3, "sparse8 message too short");
        let len = buf[0].to_bits();
        let nnz = buf[1].to_bits() as usize;
        let scale = buf[2];
        assert_eq!(
            buf.len(),
            sparse8_frame_elements(nnz),
            "sparse8 message length mismatch"
        );
        let idx: Vec<u32> = buf[3..3 + nnz].iter().map(|v| v.to_bits()).collect();
        let mut q = Vec::with_capacity(nnz);
        for packed in &buf[3 + nnz..] {
            for b in packed.to_bits().to_le_bytes() {
                if q.len() < nnz {
                    q.push(b as i8);
                }
            }
        }
        SparseVec8 { len, scale, idx, q }
    }
}

/// One tree level's wire traffic, summed over messages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Messages sent at this level.
    pub messages: u64,
    /// Sparse entries carried, summed over the level's messages.
    pub nnz: u64,
    /// `f32` elements on the wire, summed over the level's messages.
    pub elements: u64,
}

/// Per-level wire profile of a sparse tree allreduce: levels `0..d-1`
/// are the reduce sends at bits `1, 2, 4, …` (so level = depth of the
/// sender's subtree), and level `d = ⌈log₂ p⌉` is the result broadcast.
/// Index-union growth with depth shows up directly as rising
/// `nnz/messages` across levels; a union-bounded tree stays flat.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SparseLevelProfile {
    /// Per-level stats, indexed by tree level.
    pub levels: Vec<LevelStats>,
}

impl SparseLevelProfile {
    /// Accumulate `messages` messages carrying `nnz` total entries in
    /// `elements` total wire elements at `level`.
    pub fn record(&mut self, level: usize, messages: u64, nnz: u64, elements: u64) {
        if self.levels.len() <= level {
            self.levels.resize(level + 1, LevelStats::default());
        }
        let s = &mut self.levels[level];
        s.messages += messages;
        s.nnz += nnz;
        s.elements += elements;
    }

    /// Fold another profile (e.g. another rank's or another round's)
    /// into this one.
    pub fn merge(&mut self, other: &SparseLevelProfile) {
        for (level, s) in other.levels.iter().enumerate() {
            self.record(level, s.messages, s.nnz, s.elements);
        }
    }

    /// Total wire elements across all levels.
    pub fn total_elements(&self) -> u64 {
        self.levels.iter().map(|s| s.elements).sum()
    }

    /// Total messages across all levels.
    pub fn total_messages(&self) -> u64 {
        self.levels.iter().map(|s| s.messages).sum()
    }
}

/// Options for [`sparse_allreduce_tree_v2`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SparseTreeOpts {
    /// Re-TopK every merged partial down to this many entries, folding
    /// the trimmed mass into the spill. `None` = unbounded (v1
    /// behavior).
    pub union_bound: Option<usize>,
    /// When set, leaf-level sends (a rank's own un-merged contribution,
    /// which the compressor placed exactly on this `q·scale` grid) ship
    /// as [`SparseVec8`] frames. Merged partials are arbitrary f32 sums
    /// and always ship as plain [`SparseVec`] frames. All ranks must
    /// agree on `Some`/`None` (the scale itself is per-rank and travels
    /// in the frame).
    pub q8_scale: Option<f32>,
}

/// Reduce-level index of a send at tree bit `bit`.
fn level_of(bit: usize) -> usize {
    bit.trailing_zeros() as usize
}

/// The broadcast's level index: one past the last reduce level,
/// `⌈log₂ p⌉`.
fn broadcast_level(p: usize) -> usize {
    (usize::BITS - (p - 1).leading_zeros()) as usize
}

/// Trim `sv` in place to its `bound` largest-magnitude entries (NaN
/// ranks as +∞; ties break toward the lower index), returning the
/// trimmed-off entries as a sparse remainder for the caller's residual.
fn trim_to_bound(sv: &mut SparseVec, bound: usize) -> SparseVec {
    let nnz = sv.idx.len();
    if nnz <= bound {
        return SparseVec {
            len: sv.len,
            idx: Vec::new(),
            val: Vec::new(),
        };
    }
    let mut order: Vec<usize> = (0..nnz).collect();
    order.sort_by(|&a, &b| {
        trim_mag(sv.val[b])
            .total_cmp(&trim_mag(sv.val[a]))
            .then(sv.idx[a].cmp(&sv.idx[b]))
    });
    let mut keep = vec![false; nnz];
    for &e in &order[..bound] {
        keep[e] = true;
    }
    let mut kept_idx = Vec::with_capacity(bound);
    let mut kept_val = Vec::with_capacity(bound);
    let mut rest_idx = Vec::with_capacity(nnz - bound);
    let mut rest_val = Vec::with_capacity(nnz - bound);
    for (e, &kept) in keep.iter().enumerate() {
        if kept {
            kept_idx.push(sv.idx[e]);
            kept_val.push(sv.val[e]);
        } else {
            rest_idx.push(sv.idx[e]);
            rest_val.push(sv.val[e]);
        }
    }
    let rest = SparseVec {
        len: sv.len,
        idx: rest_idx,
        val: rest_val,
    };
    sv.idx = kept_idx;
    sv.val = kept_val;
    rest
}

/// Reduce phase of [`sparse_allreduce_tree_v2`] (root 0): v1's combine
/// order plus per-level profiling, optional q8 leaf frames, and optional
/// union-bound trimming after every merge (trimmed mass accumulates in
/// `spill`).
fn sparse_reduce_tree_v2<T: Transport>(
    comm: &mut T,
    sv: &mut SparseVec,
    opts: SparseTreeOpts,
    profile: &mut SparseLevelProfile,
    spill: &mut SparseVec,
) -> Result<(), CommError> {
    let p = comm.size();
    if p == 1 {
        comm.next_op();
        return Ok(());
    }
    let op = comm.next_op();
    let rank = comm.rank();
    let mut bit = 1usize;
    while bit < p {
        if rank & bit != 0 {
            let parent = rank & !bit;
            let enc = match (bit, opts.q8_scale) {
                (1, Some(scale)) => SparseVec8::from_scaled(sv, scale).encode(),
                _ => sv.encode(),
            };
            profile.record(level_of(bit), 1, sv.nnz() as u64, enc.len() as u64);
            comm.send(parent, tag(op, 1), enc)?;
            return Ok(());
        }
        let child = rank | bit;
        if child < p {
            let buf = comm.recv(child, tag(op, 1))?;
            let part = match (bit, opts.q8_scale) {
                (1, Some(_)) => SparseVec8::decode(&buf).to_sparse(),
                _ => SparseVec::decode(&buf),
            };
            sv.add_assign(&part);
            if let Some(bound) = opts.union_bound {
                let trimmed = trim_to_bound(sv, bound);
                spill.add_assign(&trimmed);
            }
        }
        bit <<= 1;
    }
    Ok(())
}

/// Sparse allreduce v2: v1's reduce-to-0-plus-broadcast with per-level
/// wire profiling, optional [`SparseVec8`] leaf frames, and an optional
/// union bound. Returns this rank's *spill* — the mass its trims removed
/// from partial sums — which the caller must fold into its
/// error-feedback residual so nothing is lost. With default
/// [`SparseTreeOpts`] the result is bitwise identical to
/// [`sparse_allreduce_tree`] and the spill is empty.
///
/// Reduce sends are profiled at the sender; the result broadcast
/// (`p − 1` messages of the root frame) is profiled analytically on
/// rank 0, so merging all ranks' profiles counts every message exactly
/// once.
pub fn sparse_allreduce_tree_v2<T: Transport>(
    comm: &mut T,
    sv: &mut SparseVec,
    opts: SparseTreeOpts,
    profile: &mut SparseLevelProfile,
) -> Result<SparseVec, CommError> {
    let p = comm.size();
    let mut spill = SparseVec {
        len: sv.len,
        idx: Vec::new(),
        val: Vec::new(),
    };
    sparse_reduce_tree_v2(comm, sv, opts, profile, &mut spill)?;
    let mut enc = sv.encode();
    if comm.rank() == 0 && p > 1 {
        let msgs = (p - 1) as u64;
        profile.record(
            broadcast_level(p),
            msgs,
            msgs * sv.nnz() as u64,
            msgs * enc.len() as u64,
        );
    }
    broadcast(comm, 0, &mut enc)?;
    *sv = SparseVec::decode(&enc);
    Ok(spill)
}

/// In-memory mirror of [`sparse_allreduce_tree_v2`] over all `p`
/// contributions at once: identical combine order (ascending bit levels,
/// receiver `r` absorbs `r | bit`), identical per-receiver trimming
/// (`bounds[r]` is rank r's union bound), and the exact
/// [`SparseLevelProfile`] the wire run's merged per-rank profiles would
/// record. Returns `(total, per-rank spills, profile)`.
///
/// The simulated backend aggregates through this so compressed runs stay
/// bitwise identical to the threaded backend and its modeled wire
/// accounting matches the measured traffic counters element-for-element.
pub fn tree_combine_bounded(
    mut svs: Vec<SparseVec>,
    q8_leaves: bool,
    bounds: &[Option<usize>],
) -> (SparseVec, Vec<SparseVec>, SparseLevelProfile) {
    let p = svs.len();
    assert!(p > 0, "no contributions");
    assert_eq!(bounds.len(), p, "one bound per rank");
    let mut profile = SparseLevelProfile::default();
    let mut spills: Vec<SparseVec> = svs
        .iter()
        .map(|s| SparseVec {
            len: s.len,
            idx: Vec::new(),
            val: Vec::new(),
        })
        .collect();
    let mut bit = 1usize;
    while bit < p {
        let mut r = 0usize;
        while r + bit < p {
            let s = r + bit;
            let frame = if bit == 1 && q8_leaves {
                sparse8_frame_elements(svs[s].nnz())
            } else {
                sparse_frame_elements(svs[s].nnz())
            };
            profile.record(level_of(bit), 1, svs[s].nnz() as u64, frame as u64);
            let empty = SparseVec {
                len: svs[s].len,
                idx: Vec::new(),
                val: Vec::new(),
            };
            let part = std::mem::replace(&mut svs[s], empty);
            svs[r].add_assign(&part);
            if let Some(bound) = bounds[r] {
                let trimmed = trim_to_bound(&mut svs[r], bound);
                spills[r].add_assign(&trimmed);
            }
            r += 2 * bit;
        }
        bit <<= 1;
    }
    let total = svs.swap_remove(0);
    if p > 1 {
        let msgs = (p - 1) as u64;
        profile.record(
            broadcast_level(p),
            msgs,
            msgs * total.nnz() as u64,
            msgs * sparse_frame_elements(total.nnz()) as u64,
        );
    }
    (total, spills, profile)
}

/// Encode an `m`-element dense vector whose entries sit exactly on the
/// `q·scale` grid as a packed dense frame `[len, scale, q-packed...]`
/// (four `i8` per `f32` slot). Debug builds assert the grid property.
fn dense8_encode(v: &[f32], scale: f32) -> Vec<f32> {
    assert!(v.len() <= u32::MAX as usize, "vector too long for wire");
    let mut out = Vec::with_capacity(dense8_frame_elements(v.len()));
    out.push(f32::from_bits(v.len() as u32));
    out.push(scale);
    for chunk in v.chunks(4) {
        let mut bytes = [0u8; 4];
        for (b, &x) in bytes.iter_mut().zip(chunk) {
            let q = (x / scale).round();
            debug_assert!(q.abs() <= 127.0, "value {x} off the 8-bit grid");
            let rec = if q == 0.0 { 0.0f32 } else { q * scale };
            debug_assert_eq!(rec.to_bits(), x.to_bits(), "value {x} not exactly q·scale");
            // lint:allow(float-cast): |q| ≤ 127 by the grid property.
            *b = (q as i8) as u8;
        }
        out.push(f32::from_bits(u32::from_le_bytes(bytes)));
    }
    out
}

/// Decode a [`dense8_encode`]d frame back to the dense `q·scale` vector
/// (`q = 0` reconstructing canonical `+0.0`).
///
/// # Panics
/// Panics if the buffer is malformed.
fn dense8_decode(buf: &[f32]) -> Vec<f32> {
    assert!(buf.len() >= 2, "dense8 message too short");
    let m = buf[0].to_bits() as usize;
    let scale = buf[1];
    assert_eq!(
        buf.len(),
        dense8_frame_elements(m),
        "dense8 message length mismatch"
    );
    let mut out = Vec::with_capacity(m);
    for packed in &buf[2..] {
        for b in packed.to_bits().to_le_bytes() {
            if out.len() < m {
                let q = b as i8;
                out.push(if q == 0 { 0.0 } else { f32::from(q) * scale });
            }
        }
    }
    out
}

/// Dense allreduce for 8-bit-quantized vectors: leaf-level sends (a
/// rank's own contribution, which the compressor placed exactly on its
/// `q·scale` grid) travel as packed dense-8-bit frames
/// (`2 + ⌈m/4⌉` elements); merged partials are arbitrary f32 sums and
/// travel dense, as does the result broadcast. The scale is per-sender
/// and rides in the frame. Because the wire only transports values the
/// sender already holds, the result is bitwise identical to
/// [`crate::collectives::allreduce_tree`] over the same (quantized)
/// inputs — the 8-bit frame is a transport optimization, not an extra
/// lossy step.
pub fn q8_allreduce_tree<T: Transport>(
    comm: &mut T,
    v: &mut Vec<f32>,
    scale: f32,
) -> Result<(), CommError> {
    let p = comm.size();
    if p == 1 {
        comm.next_op();
        return Ok(());
    }
    let op = comm.next_op();
    let rank = comm.rank();
    let mut bit = 1usize;
    while bit < p {
        if rank & bit != 0 {
            let parent = rank & !bit;
            let enc = if bit == 1 {
                dense8_encode(v, scale)
            } else {
                v.clone()
            };
            comm.send(parent, tag(op, 1), enc)?;
            break;
        }
        let child = rank | bit;
        if child < p {
            let buf = comm.recv(child, tag(op, 1))?;
            let part = if bit == 1 { dense8_decode(&buf) } else { buf };
            for (a, b) in v.iter_mut().zip(&part) {
                *a += b;
            }
        }
        bit <<= 1;
    }
    broadcast(comm, 0, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::allreduce_tree;
    use crate::world::{CommWorld, Communicator};
    use std::thread;

    fn run_world<T: Send>(p: usize, f: impl Fn(&mut Communicator) -> T + Sync) -> Vec<T> {
        let mut world = CommWorld::new(p);
        let comms = world.communicators();
        let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
        thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut c| {
                    let f = &f;
                    s.spawn(move || f(&mut c))
                })
                .collect();
            for (slot, h) in out.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("rank thread"));
            }
        });
        out.into_iter().map(|o| o.expect("result")).collect()
    }

    #[test]
    fn encode_decode_round_trip() {
        let v = vec![0.0f32, -1.5, 0.0, 3.25, 0.0, 1e-30];
        let sv = SparseVec::from_dense(&v);
        assert_eq!(sv.nnz(), 3);
        let back = SparseVec::decode(&sv.encode());
        assert_eq!(back, sv);
        assert_eq!(back.to_dense(), v);
    }

    #[test]
    fn merge_matches_dense_addition() {
        let a = vec![1.0f32, 0.0, 2.0, 0.0];
        let b = vec![0.5f32, -1.0, 0.0, 0.0];
        let mut sa = SparseVec::from_dense(&a);
        sa.add_assign(&SparseVec::from_dense(&b));
        let want: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(sa.to_dense(), want);
    }

    #[test]
    fn cancelling_sum_keeps_entry() {
        let mut a = SparseVec::from_dense(&[2.0f32, 0.0]);
        a.add_assign(&SparseVec::from_dense(&[-2.0f32, 0.0]));
        assert_eq!(a.nnz(), 1, "exact-zero sums stay represented");
        assert_eq!(a.to_dense(), vec![0.0, 0.0]);
    }

    #[test]
    fn sparse_allreduce_equals_dense_allreduce_bitwise() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            let m = 17;
            // Rank r contributes a sparse vector touching every third
            // coordinate offset by r.
            let input = |r: usize| -> Vec<f32> {
                (0..m)
                    .map(|j| {
                        if (j + r).is_multiple_of(3) {
                            (r as f32 + 1.0) * 0.1 + j as f32
                        } else {
                            0.0
                        }
                    })
                    .collect()
            };
            let dense = run_world(p, |c| {
                let mut v = input(c.rank());
                allreduce_tree(c, &mut v).expect("allreduce");
                v
            });
            let sparse = run_world(p, |c| {
                let mut sv = SparseVec::from_dense(&input(c.rank()));
                sparse_allreduce_tree(c, &mut sv).expect("sparse allreduce");
                sv.to_dense()
            });
            for (d, s) in dense.iter().zip(&sparse) {
                for (a, b) in d.iter().zip(s) {
                    assert_eq!(a.to_bits(), b.to_bits(), "p={p}");
                }
            }
        }
    }

    #[test]
    fn sparse_wire_traffic_shrinks() {
        let p = 4;
        let m = 1000usize;
        // 10 nonzeros per rank → sparse messages ≪ dense m.
        let dense_elems = {
            let mut world = CommWorld::new(p);
            let traffic = world.traffic();
            let comms = world.communicators();
            thread::scope(|s| {
                for mut c in comms {
                    s.spawn(move || {
                        let mut v = vec![0.0f32; m];
                        for j in 0..10 {
                            v[j * 97 % m] = c.rank() as f32 + 1.0;
                        }
                        allreduce_tree(&mut c, &mut v).expect("allreduce");
                    });
                }
            });
            traffic.elements_sent()
        };
        let sparse_elems = {
            let mut world = CommWorld::new(p);
            let traffic = world.traffic();
            let comms = world.communicators();
            thread::scope(|s| {
                for mut c in comms {
                    s.spawn(move || {
                        let mut v = vec![0.0f32; m];
                        for j in 0..10 {
                            v[j * 97 % m] = c.rank() as f32 + 1.0;
                        }
                        let mut sv = SparseVec::from_dense(&v);
                        sparse_allreduce_tree(&mut c, &mut sv).expect("sparse allreduce");
                    });
                }
            });
            traffic.elements_sent()
        };
        assert!(
            sparse_elems * 10 < dense_elems,
            "sparse {sparse_elems} vs dense {dense_elems}"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let mut a = SparseVec::from_dense(&[1.0f32]);
        a.add_assign(&SparseVec::from_dense(&[1.0f32, 2.0]));
    }

    /// A sparse vector whose values sit exactly on the `q·scale` grid.
    fn grid_vector(m: usize, scale: f32, seed: usize) -> SparseVec {
        let mut v = vec![0.0f32; m];
        for j in 0..(m / 3) {
            let q = ((seed + 3 * j) % 255) as i32 - 127;
            if q != 0 {
                v[(seed + 7 * j) % m] = q as f32 * scale;
            }
        }
        SparseVec::from_dense(&v)
    }

    #[test]
    fn sparse8_round_trip_is_bitwise_for_grid_values() {
        let sv = grid_vector(97, 0.03125, 5);
        let q8 = SparseVec8::from_scaled(&sv, 0.03125);
        let enc = q8.encode();
        assert_eq!(enc.len(), sparse8_frame_elements(sv.nnz()));
        let back = SparseVec8::decode(&enc);
        assert_eq!(back, q8);
        let rec = back.to_sparse();
        assert_eq!(rec.idx, sv.idx);
        for (a, b) in rec.val.iter().zip(&sv.val) {
            assert_eq!(a.to_bits(), b.to_bits(), "grid values survive the wire");
        }
    }

    #[test]
    fn sparse8_quantize_obeys_half_step_bound() {
        // Off-grid values: a fresh quantization grid loses at most half a
        // step per kept coordinate.
        let mut v = vec![0.0f32; 64];
        for (j, slot) in v.iter_mut().enumerate().skip(1) {
            *slot = (j as f32 * 0.377).sin() * 2.5;
        }
        let sv = SparseVec::from_dense(&v);
        let q8 = SparseVec8::quantize(&sv);
        let rec = q8.to_sparse();
        for ((&orig, &r), &i) in sv.val.iter().zip(&rec.val).zip(&sv.idx) {
            assert!(
                (orig - r).abs() <= q8.scale / 2.0 + 1e-6,
                "coord {i}: {orig} -> {r}, step {}",
                q8.scale
            );
        }
    }

    #[test]
    fn trim_keeps_largest_and_returns_the_rest() {
        let mut sv = SparseVec::from_dense(&[1.0f32, -4.0, 0.5, 3.0, -2.0]);
        let rest = trim_to_bound(&mut sv, 2);
        assert_eq!(sv.idx, vec![1, 3], "largest magnitudes survive");
        assert_eq!(rest.idx, vec![0, 2, 4], "trimmed mass is handed back");
        assert_eq!(rest.val, vec![1.0, 0.5, -2.0]);
        // Under the bound: no-op, empty remainder.
        let rest = trim_to_bound(&mut sv, 5);
        assert_eq!(rest.nnz(), 0);
        assert_eq!(sv.idx, vec![1, 3]);
    }

    #[test]
    fn v2_with_default_opts_matches_v1_bitwise_with_empty_spill() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            let m = 17;
            let input = |r: usize| -> Vec<f32> {
                (0..m)
                    .map(|j| {
                        if (j + r).is_multiple_of(3) {
                            (r as f32 + 1.0) * 0.1 + j as f32
                        } else {
                            0.0
                        }
                    })
                    .collect()
            };
            let v1 = run_world(p, |c| {
                let mut sv = SparseVec::from_dense(&input(c.rank()));
                sparse_allreduce_tree(c, &mut sv).expect("v1");
                sv.to_dense()
            });
            let v2 = run_world(p, |c| {
                let mut sv = SparseVec::from_dense(&input(c.rank()));
                let mut profile = SparseLevelProfile::default();
                let spill =
                    sparse_allreduce_tree_v2(c, &mut sv, SparseTreeOpts::default(), &mut profile)
                        .expect("v2");
                assert_eq!(spill.nnz(), 0, "unbounded tree spills nothing");
                sv.to_dense()
            });
            for (a, b) in v1.iter().zip(&v2) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "p={p}");
                }
            }
        }
    }

    #[test]
    fn v2_wire_matches_in_memory_mirror_bitwise() {
        // q8 leaf frames + union bound, p across tree shapes: the wire
        // run and tree_combine_bounded must agree on the total, every
        // rank's spill, and the merged per-level profile.
        for p in [2usize, 3, 4, 7, 8] {
            let m = 64;
            let scale = 0.03125f32;
            let bound = 6usize;
            let inputs: Vec<SparseVec> = (0..p).map(|r| grid_vector(m, scale, r + 1)).collect();
            let wire: Vec<(Vec<f32>, Vec<f32>, SparseLevelProfile)> = {
                let inputs = &inputs;
                run_world(p, move |c| {
                    let mut sv = inputs[c.rank()].clone();
                    let mut profile = SparseLevelProfile::default();
                    let opts = SparseTreeOpts {
                        union_bound: Some(bound),
                        q8_scale: Some(scale),
                    };
                    let spill = sparse_allreduce_tree_v2(c, &mut sv, opts, &mut profile)
                        .expect("v2 bounded");
                    (sv.to_dense(), spill.to_dense(), profile)
                })
            };
            let bounds = vec![Some(bound); p];
            let (total, spills, mirror_profile) =
                tree_combine_bounded(inputs.clone(), true, &bounds);
            let total_dense = total.to_dense();
            let mut merged = SparseLevelProfile::default();
            for (r, (wire_total, wire_spill, profile)) in wire.iter().enumerate() {
                merged.merge(profile);
                for (a, b) in wire_total.iter().zip(&total_dense) {
                    assert_eq!(a.to_bits(), b.to_bits(), "total p={p} rank={r}");
                }
                let mirror_spill = spills[r].to_dense();
                for (a, b) in wire_spill.iter().zip(&mirror_spill) {
                    assert_eq!(a.to_bits(), b.to_bits(), "spill p={p} rank={r}");
                }
            }
            assert_eq!(merged, mirror_profile, "p={p}");
        }
    }

    #[test]
    fn bounded_tree_conserves_mass_exactly() {
        // Integer-valued contributions: every sum is exact in f32, so
        // delivered + spilled must equal the input mass to the bit.
        let p = 4;
        let m = 32;
        let inputs: Vec<SparseVec> = (0..p)
            .map(|r| {
                let mut v = vec![0.0f32; m];
                for j in 0..12 {
                    v[(r * 5 + j * 3) % m] = (r + 1) as f32 * (j + 1) as f32;
                }
                SparseVec::from_dense(&v)
            })
            .collect();
        let input_mass: f64 = inputs
            .iter()
            .flat_map(|sv| sv.val.iter())
            .map(|&v| f64::from(v))
            .sum();
        let bounds = vec![Some(5usize); p];
        let (total, spills, _) = tree_combine_bounded(inputs, false, &bounds);
        assert!(total.nnz() <= 5, "delivered vector respects the bound");
        let delivered: f64 = total.val.iter().map(|&v| f64::from(v)).sum();
        let spilled: f64 = spills
            .iter()
            .flat_map(|sv| sv.val.iter())
            .map(|&v| f64::from(v))
            .sum();
        assert_eq!(
            delivered + spilled,
            input_mass,
            "no mass is silently lost by union-bound trimming"
        );
    }

    #[test]
    fn union_bound_keeps_per_message_nnz_flat_across_levels() {
        // Disjoint index sets per rank: the worst case for union growth.
        let p = 8;
        let m = 4096;
        let per_rank = 16usize;
        let inputs = |r: usize| {
            let mut v = vec![0.0f32; m];
            for j in 0..per_rank {
                v[r * 512 + j * 7] = (r + 1) as f32;
            }
            SparseVec::from_dense(&v)
        };
        let svs: Vec<SparseVec> = (0..p).map(inputs).collect();
        let (_, _, unbounded) = tree_combine_bounded(svs.clone(), false, &vec![None; p]);
        let leaf = &unbounded.levels[0];
        let deepest = &unbounded.levels[2];
        assert!(
            deepest.nnz * leaf.messages > 2 * leaf.nnz * deepest.messages,
            "unbounded per-message nnz must grow with depth: {unbounded:?}"
        );
        let (total, spills, bounded) = tree_combine_bounded(svs, false, &vec![Some(per_rank); p]);
        for (level, s) in bounded.levels.iter().enumerate() {
            assert!(
                s.nnz <= s.messages * per_rank as u64,
                "level {level} exceeds the union bound: {s:?}"
            );
        }
        assert_eq!(total.nnz(), per_rank, "delivered vector is at the bound");
        assert!(
            spills.iter().map(SparseVec::nnz).sum::<usize>() > 0,
            "trimmed mass lands in the spills"
        );
    }

    /// A dense vector on rank `r`'s own `q·scale` grid.
    fn grid_dense(m: usize, scale: f32, seed: usize) -> Vec<f32> {
        let mut v = vec![0.0f32; m];
        for (j, slot) in v.iter_mut().enumerate() {
            let q = ((seed + 5 * j) % 255) as i32 - 127;
            if q != 0 {
                *slot = q as f32 * scale;
            }
        }
        v
    }

    #[test]
    fn dense8_frame_round_trip_is_bitwise() {
        for m in [0usize, 1, 3, 4, 17] {
            let v = grid_dense(m, 0.0625, 2);
            let enc = dense8_encode(&v, 0.0625);
            assert_eq!(enc.len(), dense8_frame_elements(m));
            assert_eq!(dense8_decode(&enc), v, "m={m}");
        }
    }

    #[test]
    fn q8_allreduce_matches_dense_allreduce_bitwise() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            let m = 23;
            let dense = run_world(p, |c| {
                let mut v = grid_dense(m, 0.0625, c.rank() + 1);
                allreduce_tree(c, &mut v).expect("allreduce");
                v
            });
            let q8 = run_world(p, |c| {
                let mut v = grid_dense(m, 0.0625, c.rank() + 1);
                q8_allreduce_tree(c, &mut v, 0.0625).expect("q8 allreduce");
                v
            });
            for (d, s) in dense.iter().zip(&q8) {
                for (a, b) in d.iter().zip(s) {
                    assert_eq!(a.to_bits(), b.to_bits(), "p={p}");
                }
            }
        }
    }

    #[test]
    fn q8_allreduce_wire_traffic_is_exactly_modeled() {
        // p=4 tree: two leaf senders (ranks 1, 3) ship packed frames, one
        // internal sender (rank 2) ships dense, broadcast ships 3 dense.
        let p = 4;
        let m = 1000usize;
        let mut world = CommWorld::new(p);
        let traffic = world.traffic();
        let comms = world.communicators();
        thread::scope(|s| {
            for mut c in comms {
                s.spawn(move || {
                    let mut v = grid_dense(m, 0.125, c.rank() + 1);
                    q8_allreduce_tree(&mut c, &mut v, 0.125).expect("q8 allreduce");
                });
            }
        });
        let want = (2 * dense8_frame_elements(m) + m + 3 * m) as u64;
        assert_eq!(traffic.elements_sent(), want);
        assert!(want < (2 * (p - 1) * m) as u64, "beats the dense tree");
    }
}

//! Shape arithmetic shared by tensors, layers and the FLOP model.

/// A tensor shape: the extent of each dimension, row-major (last dimension
/// contiguous).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Construct from a slice of extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Extent of dimension `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.0[i + 1];
        }
        s
    }
}

impl From<&[usize]> for Shape {
    fn from(d: &[usize]) -> Self {
        Shape::new(d)
    }
}

/// Output spatial extent of a convolution along one axis.
///
/// `input` with `pad` zeros on each side, a window of `kernel`, and step
/// `stride`; standard floor formula.
///
/// # Panics
/// Panics if the padded input is smaller than the kernel.
pub fn conv_out(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    let padded = input + 2 * pad;
    assert!(
        padded >= kernel,
        "conv window {kernel} larger than padded input {padded}"
    );
    (padded - kernel) / stride + 1
}

/// Output spatial extent of a pooling window (no padding, stride = window by
/// default in the paper's networks; a general `stride` is supported).
pub fn pool_out(input: usize, window: usize, stride: usize) -> usize {
    assert!(
        input >= window,
        "pool window {window} larger than input {input}"
    );
    (input - window) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_ndim() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.ndim(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn empty_shape_is_scalar() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.ndim(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s1 = Shape::new(&[5]);
        assert_eq!(s1.strides(), vec![1]);
    }

    #[test]
    fn conv_out_matches_table1_pipeline() {
        // Table I geometry: 32x32 input, conv5x5 pad2 -> 32, pool2 -> 16,
        // conv3x3 pad1 -> 16, pool2 -> 8, conv3x3 pad1 -> 8, pool2 -> 4,
        // conv2x2 pad0 -> 3, pool2 -> 1.
        assert_eq!(conv_out(32, 5, 1, 2), 32);
        assert_eq!(pool_out(32, 2, 2), 16);
        assert_eq!(conv_out(16, 3, 1, 1), 16);
        assert_eq!(pool_out(16, 2, 2), 8);
        assert_eq!(conv_out(8, 3, 1, 1), 8);
        assert_eq!(pool_out(8, 2, 2), 4);
        assert_eq!(conv_out(4, 2, 1, 0), 3);
        assert_eq!(pool_out(3, 2, 2), 1);
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn conv_out_rejects_oversized_kernel() {
        conv_out(2, 5, 1, 0);
    }
}

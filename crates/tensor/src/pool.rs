//! Max-pooling kernels with argmax bookkeeping for the backward pass.
//!
//! Both passes parallelize across the `n·c` independent planes of the
//! batch; within a plane the window scan order is fixed, so results are
//! bitwise identical to the serial path at any thread count.

use crate::parallel;
use crate::shape::pool_out;
use crate::tensor::Tensor;

/// Geometry of one max-pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pool2dSpec {
    /// Window height.
    pub wh: usize,
    /// Window width.
    pub ww: usize,
    /// Stride (same both axes; the paper's networks use stride = window).
    pub stride: usize,
}

impl Pool2dSpec {
    /// Square window with stride equal to the window (the paper's setting).
    pub fn square(k: usize) -> Self {
        Pool2dSpec {
            wh: k,
            ww: k,
            stride: k,
        }
    }

    /// Output spatial size.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            pool_out(h, self.wh, self.stride),
            pool_out(w, self.ww, self.stride),
        )
    }
}

/// Result of a pooling forward pass: outputs plus the flat input index that
/// won each window (needed to route gradients back).
pub struct PoolForward {
    /// `[n, c, oh, ow]` pooled values.
    pub output: Tensor,
    /// For each output element, the flat index into the input that supplied
    /// the maximum.
    pub argmax: Vec<u32>,
}

/// Max-pool an NCHW batch into caller-provided output/argmax buffers
/// (`[n*c*oh*ow]` each). Every element of both buffers is written, so
/// they may hold stale values on entry.
pub fn maxpool2d_forward_into(
    input: &Tensor,
    spec: &Pool2dSpec,
    output: &mut [f32],
    argmax: &mut [u32],
) {
    let [n, c, h, w] = [
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    ];
    let (oh, ow) = spec.out_hw(h, w);
    assert_eq!(output.len(), n * c * oh * ow, "pool output size");
    assert_eq!(argmax.len(), n * c * oh * ow, "pool argmax size");
    let id = input.as_slice();
    let out_plane = oh * ow;
    let spec = *spec;
    parallel::for_each_zip_chunks_mut(output, out_plane, argmax, out_plane, |p, oplane, aplane| {
        // p enumerates (img, channel) planes in row-major order.
        let plane = p * h * w;
        let mut o = 0usize;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for ky in 0..spec.wh {
                    let iy = oy * spec.stride + ky;
                    for kx in 0..spec.ww {
                        let ix = ox * spec.stride + kx;
                        let idx = plane + iy * w + ix;
                        if id[idx] > best {
                            best = id[idx];
                            best_idx = idx;
                        }
                    }
                }
                oplane[o] = best;
                aplane[o] = best_idx as u32;
                o += 1;
            }
        }
    });
}

/// Max-pool an NCHW batch.
pub fn maxpool2d_forward(input: &Tensor, spec: &Pool2dSpec) -> PoolForward {
    let [n, c, h, w] = [
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    ];
    let (oh, ow) = spec.out_hw(h, w);
    let mut output = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = vec![0u32; n * c * oh * ow];
    maxpool2d_forward_into(input, spec, output.as_mut_slice(), &mut argmax);
    PoolForward { output, argmax }
}

/// Route output gradients back to the winning input positions.
///
/// When `grad_out` is NCHW the scatter runs plane-parallel: each `(img,
/// channel)` plane's argmax targets stay inside that plane's slice of the
/// input, so planes write disjoint regions and the in-plane scatter keeps
/// the serial output order (overlapping windows hit the same winner in the
/// same sequence).
pub fn maxpool2d_backward(grad_out: &Tensor, argmax: &[u32], input_numel: usize) -> Tensor {
    let mut din = vec![0.0f32; input_numel];
    maxpool2d_backward_into(grad_out, argmax, &mut din);
    Tensor::from_vec(din, &[input_numel])
}

/// [`maxpool2d_backward`] scattering into a caller-provided, **pre-zeroed**
/// input-gradient slice (only the winning positions are touched).
pub fn maxpool2d_backward_into(grad_out: &Tensor, argmax: &[u32], din: &mut [f32]) {
    assert_eq!(grad_out.numel(), argmax.len(), "argmax length mismatch");
    let input_numel = din.len();
    let dims = grad_out.dims();
    let planes = if dims.len() == 4 {
        dims[0] * dims[1]
    } else {
        1
    };
    let gd = grad_out.as_slice();
    if planes > 1 && input_numel.is_multiple_of(planes) && gd.len().is_multiple_of(planes) {
        let in_plane = input_numel / planes;
        let out_plane = gd.len() / planes;
        parallel::for_each_chunk_mut(din, in_plane, |p, dplane| {
            let base = p * in_plane;
            let lo = p * out_plane;
            for (g, &idx) in gd[lo..lo + out_plane]
                .iter()
                .zip(&argmax[lo..lo + out_plane])
            {
                dplane[idx as usize - base] += g;
            }
        });
    } else {
        for (g, &idx) in gd.iter().zip(argmax) {
            din[idx as usize] += g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedRng;

    #[test]
    fn forward_picks_window_max() {
        // One 4x4 plane; 2x2 pooling -> each quadrant's max.
        let input = Tensor::from_vec(
            vec![
                1., 2., 5., 0., //
                3., 4., 1., 1., //
                0., 9., 2., 2., //
                8., 7., 3., 6.,
            ],
            &[1, 1, 4, 4],
        );
        let f = maxpool2d_forward(&input, &Pool2dSpec::square(2));
        assert_eq!(f.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(f.output.as_slice(), &[4., 5., 9., 6.]);
        assert_eq!(f.argmax, vec![5, 2, 9, 15]);
    }

    #[test]
    fn odd_input_drops_trailing_row_col() {
        // 3x3 with 2x2 stride-2 pooling -> 1x1 (paper's final pool: 3 -> 1).
        let input = Tensor::from_vec((1..=9).map(|x| x as f32).collect(), &[1, 1, 3, 3]);
        let f = maxpool2d_forward(&input, &Pool2dSpec::square(2));
        assert_eq!(f.output.dims(), &[1, 1, 1, 1]);
        assert_eq!(f.output.as_slice(), &[5.0]);
    }

    #[test]
    fn backward_routes_to_argmax_only() {
        let input = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 2, 2]);
        let f = maxpool2d_forward(&input, &Pool2dSpec::square(2));
        let g = Tensor::from_vec(vec![2.5], &[1, 1, 1, 1]);
        let din = maxpool2d_backward(&g, &f.argmax, 4);
        assert_eq!(din.as_slice(), &[0., 0., 0., 2.5]);
    }

    #[test]
    fn backward_is_gradient_of_sum() {
        let mut r = SeedRng::new(8);
        let input = r.normal_tensor(&[2, 3, 6, 6], 1.0);
        let spec = Pool2dSpec::square(2);
        let f = maxpool2d_forward(&input, &spec);
        let grad_out = Tensor::full(&[2, 3, 3, 3], 1.0);
        let din = maxpool2d_backward(&grad_out, &f.argmax, input.numel());
        let eps = 1e-2f32;
        let base = f.output.sum();
        for &k in &[0usize, 10, 50, 100, 200] {
            let mut xp = input.clone();
            xp.as_mut_slice()[k] += eps;
            let up = maxpool2d_forward(&xp, &spec).output.sum();
            let fd = (up - base) / eps;
            let an = din.as_slice()[k];
            // Max is piecewise linear; away from ties fd == an exactly.
            assert!((fd - an).abs() < 0.51, "x[{k}]: fd {fd} vs {an}");
        }
    }
}

//! Deterministic tile autotuning for the packed GEMM path.
//!
//! Chooses the register tile (`MR`×`NR`), the reduction block depth `KC`,
//! and the column window `NC` for a `(m, k, n)` GEMM. The choice is a
//! **pure function of the shape class** — a fixed candidate grid scored by
//! a static cost model (register pressure, operand reuse, ragged-edge
//! waste) — never a wall-clock search. Two runs of the same binary on any
//! machine therefore pick the same tiles, which keeps the packed kernels'
//! (already tolerance-mode) fold order reproducible and keeps this crate
//! clean under the analyzer's wall-clock lint. A *measured* sweep over the
//! same candidate grid lives in `sasgd-bench` (`repro hotpath`), where
//! wall-clock reads are sanctioned; its job is to report how far the model
//! pick sits from the empirical best, not to feed choices back in.
//!
//! Every plan actually used by the packed path is recorded in a process
//! registry ([`observed`]) keyed by shape class, so the bench artifact can
//! serialize exactly the tiles a run trained with.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use std::collections::BTreeMap;

/// Register-tile and cache-block sizes for one GEMM shape class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TilePlan {
    /// Micro-tile rows (rows of `A` held in registers).
    pub mr: usize,
    /// Micro-tile columns (one packed `B` panel width).
    pub nr: usize,
    /// Reduction block depth: packed panels cover `kc` of the `k` extent.
    pub kc: usize,
    /// Column window: `nc` output columns are swept per row panel before
    /// moving down, keeping that window of packed `B` cache-resident.
    pub nc: usize,
}

/// The fixed `(MR, NR)` candidate grid. `NR` is a multiple of 8 so the
/// microkernel's inner loop is whole vector lanes.
const TILE_GRID: &[(usize, usize)] = &[(4, 8), (8, 8), (4, 16), (8, 16)];

/// `KC` candidates (largest not exceeding `k` wins the footprint score).
const KC_GRID: &[usize] = &[64, 128, 256];

/// Widest column window considered, in columns.
const NC_MAX: usize = 256;

/// Vector registers the microkernel needs for an `(mr, nr)` tile,
/// counting 8-lane registers: `mr·nr/8` accumulators, `nr/8` loads of the
/// `B` panel row, one broadcast of `A`.
fn vector_regs(mr: usize, nr: usize) -> usize {
    mr * (nr / 8) + nr / 8 + 1
}

/// Shape class of a GEMM: each extent bucketed by its floor-log2, so e.g.
/// every `m` in `[2048, 4095]` shares a class. Tile choice and the
/// [`observed`] registry are keyed by this.
pub fn shape_class(m: usize, k: usize, n: usize) -> (u8, u8, u8) {
    let b = |x: usize| (usize::BITS - 1 - x.max(1).leading_zeros()) as u8;
    (b(m), b(k), b(n))
}

/// Representative extent of a log2 bucket (its lower edge) — what the
/// scoring model sees, so every shape in a class scores identically.
fn bucket_floor(b: u8) -> usize {
    1usize << b
}

/// Deterministically choose tiles for a `(m, k, n)` GEMM.
///
/// Scoring, in order of precedence:
/// 1. register feasibility — candidates needing more than 16 8-lane
///    registers (e.g. 8×16) are dropped;
/// 2. operand reuse — flops per packed element touched,
///    `mr·nr / (mr + nr)`, scaled by
/// 3. ragged-edge utilization — the fraction of the padded
///    `⌈m/mr⌉·mr × ⌈n/nr⌉·nr` footprint holding real outputs.
///
/// Ties break toward the earlier grid entry, so the choice is total.
pub fn plan_for(m: usize, k: usize, n: usize) -> TilePlan {
    let (mb, kb, nb) = shape_class(m, k, n);
    let (mc, kc_rep, nc_rep) = (bucket_floor(mb), bucket_floor(kb), bucket_floor(nb));
    let mut best: Option<(f64, usize, usize)> = None;
    for &(mr, nr) in TILE_GRID {
        if vector_regs(mr, nr) > 16 {
            continue;
        }
        let reuse = (mr * nr) as f64 / (mr + nr) as f64;
        let padded = mc.div_ceil(mr) * mr * nc_rep.div_ceil(nr) * nr;
        let util = (mc * nc_rep) as f64 / padded as f64;
        let score = reuse * util;
        if best.is_none_or(|(s, _, _)| score > s) {
            best = Some((score, mr, nr));
        }
    }
    let (_, mr, nr) = best.expect("tile grid has feasible entries");
    // Deepest KC candidate not exceeding the class floor of k; classes
    // below the smallest candidate use the floor itself. The driver clamps
    // each block to the remaining k, so the reduction is never padded.
    let kc = KC_GRID
        .iter()
        .rev()
        .find(|&&c| c <= kc_rep)
        .copied()
        .unwrap_or(kc_rep);
    // Column window: whole NR panels covering the class floor of n,
    // capped at NC_MAX.
    let nc = nc_rep.div_ceil(nr).min(NC_MAX / nr).max(1) * nr;
    TilePlan { mr, nr, kc, nc }
}

/// One registry entry: a shape class, the plan chosen for it, an example
/// shape that hit it first, and how many packed GEMM calls used it.
#[derive(Clone, Copy, Debug)]
pub struct ObservedPlan {
    /// log2 buckets of (m, k, n).
    pub class: (u8, u8, u8),
    /// The tiles chosen for the class.
    pub plan: TilePlan,
    /// First concrete `(m, k, n)` that instantiated the class.
    pub example: (usize, usize, usize),
    /// Packed GEMM calls dispatched with this plan.
    pub hits: u64,
}

/// Registry payload: the plan, the first concrete shape, and a hit count.
type Observation = (TilePlan, (usize, usize, usize), u64);

/// `class -> (plan, example, hits)`, appended on first use by the packed
/// driver. BTreeMap so iteration (and the bench artifact built from it)
/// is deterministically ordered.
static OBSERVED: Mutex<BTreeMap<(u8, u8, u8), Observation>> = Mutex::new(BTreeMap::new());

/// Total packed GEMM dispatches recorded (cheap probe for tests).
static RECORDED: AtomicU64 = AtomicU64::new(0);

/// Look up (computing and recording on first use) the plan for a shape.
/// This is what the packed GEMM driver calls per dispatch.
pub fn plan_recorded(m: usize, k: usize, n: usize) -> TilePlan {
    let plan = plan_for(m, k, n);
    let class = shape_class(m, k, n);
    let mut map = OBSERVED.lock().expect("tile registry poisoned");
    let entry = map.entry(class).or_insert((plan, (m, k, n), 0));
    entry.2 += 1;
    RECORDED.fetch_add(1, Ordering::Relaxed);
    plan
}

/// Snapshot of every plan used so far, in class order.
pub fn observed() -> Vec<ObservedPlan> {
    OBSERVED
        .lock()
        .expect("tile registry poisoned")
        .iter()
        .map(|(&class, &(plan, example, hits))| ObservedPlan {
            class,
            plan,
            example,
            hits,
        })
        .collect()
}

/// Clear the registry (bench harness isolation between sweep legs).
pub fn reset_observed() {
    OBSERVED.lock().expect("tile registry poisoned").clear();
}

/// Packed GEMM dispatches recorded since process start (monotonic).
pub fn recorded_count() -> u64 {
    RECORDED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_class_stable() {
        let a = plan_for(2048, 576, 128);
        let b = plan_for(2048, 576, 128);
        assert_eq!(a, b);
        // Same log2 class, same plan.
        assert_eq!(plan_for(2048, 576, 128), plan_for(3000, 700, 200));
        assert_eq!(shape_class(2048, 576, 128), shape_class(3000, 700, 200));
    }

    #[test]
    fn register_pressure_excludes_8x16() {
        for m in [64usize, 512, 4096] {
            for n in [64usize, 512, 4096] {
                let p = plan_for(m, 256, n);
                assert!(
                    vector_regs(p.mr, p.nr) <= 16,
                    "infeasible tile {}x{} chosen for {m}x{n}",
                    p.mr,
                    p.nr
                );
            }
        }
    }

    #[test]
    fn kc_is_class_pure_and_grid_bounded() {
        // Below the smallest grid entry: the class floor (power of two).
        assert_eq!(plan_for(1024, 7, 64).kc, 4);
        // At or above: the deepest grid candidate within the class floor.
        assert_eq!(plan_for(1024, 75, 64).kc, 64);
        assert_eq!(plan_for(1024, 300, 64).kc, 256);
        assert_eq!(plan_for(1024, 100, 64).kc, 64);
        // Class purity: any k sharing a log2 bucket shares the plan.
        assert_eq!(plan_for(1024, 65, 64), plan_for(1024, 127, 64));
    }

    #[test]
    fn nc_is_whole_panels_and_capped() {
        let p = plan_for(1024, 256, 1000);
        assert_eq!(p.nc % p.nr, 0);
        assert!(p.nc <= NC_MAX);
        let small = plan_for(1024, 256, 5);
        assert_eq!(small.nc, small.nr, "tiny n rounds up to one panel");
    }

    #[test]
    fn registry_records_first_use_and_hits() {
        reset_observed();
        let before = recorded_count();
        let p1 = plan_recorded(333, 77, 55);
        let p2 = plan_recorded(340, 80, 60); // same class
        assert_eq!(p1, p2);
        assert_eq!(recorded_count() - before, 2);
        let obs = observed();
        let entry = obs
            .iter()
            .find(|o| o.class == shape_class(333, 77, 55))
            .expect("class recorded");
        assert_eq!(entry.example, (333, 77, 55), "first shape wins");
        assert!(entry.hits >= 2);
    }
}

//! Data-partition strategies across learners.
//!
//! The paper shards uniformly (its generated datasets are shuffled, so
//! contiguous shards are IID). Real deployments often can't: data arrives
//! grouped by source. [`ShardStrategy::ByClass`] builds that pathological
//! partition — each learner sees only a few classes — which is the regime
//! where one-shot model averaging collapses and per-interval aggregation
//! (SASGD) keeps working; the workspace tests exercise exactly that
//! contrast.

use sasgd_tensor::SeedRng;

use crate::dataset::{Dataset, Shard};

/// How to split a dataset across `p` learners.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Contiguous near-equal ranges (the default; IID when the dataset is
    /// shuffled, as both generators guarantee).
    Contiguous,
    /// Round-robin by index — IID by construction even for sorted data.
    Striped,
    /// Sort by label, then split contiguously: maximally non-IID. Learner
    /// `k` sees roughly `classes/p` of the label space.
    ByClass,
    /// Random permutation, then contiguous split (IID, seed-controlled).
    Shuffled {
        /// Permutation seed.
        seed: u64,
    },
}

/// Partition `data` into `p` shards under `strategy`.
///
/// Every sample lands in exactly one shard; shard sizes differ by at most
/// one (for `ByClass`, at most one *after* the label sort).
pub fn make_shards(data: &Dataset, p: usize, strategy: ShardStrategy) -> Vec<Shard> {
    assert!(p > 0, "need at least one learner");
    let n = data.len();
    let order: Vec<usize> = match strategy {
        ShardStrategy::Contiguous => return data.shards(p),
        ShardStrategy::Striped => {
            let mut shards = vec![Vec::new(); p];
            for i in 0..n {
                shards[i % p].push(i);
            }
            return shards.into_iter().map(Shard::from_indices).collect();
        }
        ShardStrategy::ByClass => {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by_key(|&i| (data.label(i), i));
            idx
        }
        ShardStrategy::Shuffled { seed } => {
            let mut idx: Vec<usize> = (0..n).collect();
            SeedRng::new(seed).shuffle(&mut idx);
            idx
        }
    };
    // Contiguous split of the reordered index list.
    let base = n / p;
    let extra = n % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0usize;
    for k in 0..p {
        let size = base + usize::from(k < extra);
        out.push(Shard::from_indices(order[start..start + size].to_vec()));
        start += size;
    }
    out
}

/// Number of distinct labels present in a shard — a simple non-IID-ness
/// probe used by tests and reports.
pub fn shard_label_diversity(data: &Dataset, shard: &Shard) -> usize {
    let mut seen = vec![false; data.classes()];
    for &i in shard.indices() {
        seen[data.label(i)] = true;
    }
    seen.iter().filter(|&&s| s).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, classes: usize) -> Dataset {
        let x = vec![0.0f32; n];
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        Dataset::new(x, labels, &[1], classes)
    }

    fn assert_partition(shards: &[Shard], n: usize) {
        let mut all: Vec<usize> = shards.iter().flat_map(|s| s.indices().to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn all_strategies_partition() {
        let d = toy(23, 4);
        for s in [
            ShardStrategy::Contiguous,
            ShardStrategy::Striped,
            ShardStrategy::ByClass,
            ShardStrategy::Shuffled { seed: 1 },
        ] {
            let shards = make_shards(&d, 5, s);
            assert_eq!(shards.len(), 5);
            assert_partition(&shards, 23);
        }
    }

    #[test]
    fn by_class_minimizes_diversity() {
        // 8 classes over 4 learners: each by-class shard should see ~2-3
        // labels while shuffled shards see (almost) all 8. Note striping
        // would be a bad IID comparator here because the toy labels cycle
        // with the index (`i % 8` stripes into {k, k+4}).
        let d = toy(80, 8);
        let by_class = make_shards(&d, 4, ShardStrategy::ByClass);
        let shuffled = make_shards(&d, 4, ShardStrategy::Shuffled { seed: 3 });
        for s in &by_class {
            assert!(
                shard_label_diversity(&d, s) <= 3,
                "by-class shard too diverse"
            );
        }
        for s in &shuffled {
            assert!(
                shard_label_diversity(&d, s) >= 6,
                "shuffled shard misses labels"
            );
        }
    }

    #[test]
    fn shuffled_is_deterministic_per_seed() {
        let d = toy(40, 4);
        let a = make_shards(&d, 4, ShardStrategy::Shuffled { seed: 9 });
        let b = make_shards(&d, 4, ShardStrategy::Shuffled { seed: 9 });
        let c = make_shards(&d, 4, ShardStrategy::Shuffled { seed: 10 });
        assert_eq!(a[0].indices(), b[0].indices());
        assert_ne!(a[0].indices(), c[0].indices());
    }

    #[test]
    fn striped_sizes_near_equal() {
        let d = toy(10, 2);
        let shards = make_shards(&d, 3, ShardStrategy::Striped);
        let sizes: Vec<usize> = shards.iter().map(Shard::len).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }
}

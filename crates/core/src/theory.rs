//! The paper's convergence mathematics (§II-B, §III-A/B).
//!
//! Notation follows Table III of the paper: `Df = f(x₁) − f(x*)`, `L` the
//! Lipschitz constant of the gradient, `σ²` the gradient-variance bound,
//! `M` the minibatch size, `p` learners, `T` the aggregation interval,
//! `γ` / `γp` the local/global learning rates, `K` update counts, and
//! `S = M·T·K·p` total samples.

use sasgd_data::Dataset;
use sasgd_nn::{Ctx, Model};
use sasgd_tensor::SeedRng;

/// Physical problem constants used by every bound.
#[derive(Clone, Copy, Debug)]
pub struct ProblemConstants {
    /// Initial optimality gap `f(x₁) − f(x*)` (the paper bounds it by
    /// `f(x₁)`).
    pub df: f64,
    /// Lipschitz constant of the gradient.
    pub l: f64,
    /// Upper bound on per-sample gradient variance.
    pub sigma2: f64,
}

// ---------------------------------------------------------------------------
// ASGD (Lian et al.) — Equations 1 and 2, Theorem 1.
// ---------------------------------------------------------------------------

/// Right-hand side of Equation 1: the ASGD average-gradient-norm guarantee
/// after `K` updates of minibatch size `m` with `p` learners at constant
/// learning rate `gamma`. Returns `None` when the step-size condition of
/// Equation 2 fails.
pub fn asgd_bound(c: &ProblemConstants, m: usize, k: usize, p: usize, gamma: f64) -> Option<f64> {
    let (mf, kf, pf) = (m as f64, k as f64, p as f64);
    let constraint = c.l * mf * gamma + 2.0 * c.l * c.l * mf * mf * pf * pf * gamma * gamma;
    if constraint > 1.0 + 1e-12 {
        return None;
    }
    Some(
        2.0 * c.df / (mf * kf * gamma)
            + c.sigma2 * c.l * gamma
            + 2.0 * c.sigma2 * c.l * c.l * mf * pf * gamma * gamma,
    )
}

/// The `α` of Theorem 1: `α = √(K σ² / (M L Df))` — the normalized update
/// count at which the learning-rate regime changes.
pub fn alpha(c: &ProblemConstants, m: usize, k: usize) -> f64 {
    (k as f64 * c.sigma2 / (m as f64 * c.l * c.df)).sqrt()
}

/// The upper end of the admissible `c` range in Theorem 1's optimization
/// (Equation 6): `α/(4p²)·(−1 + √(1+8p²))`.
pub fn c_max(p: usize, alpha: f64) -> f64 {
    let pf = p as f64;
    alpha / (4.0 * pf * pf) * ((1.0 + 8.0 * pf * pf).sqrt() - 1.0)
}

/// The normalized guarantee `g(c) = 2/c + c + 2pc²/α` (Equation 5's
/// objective).
pub fn guarantee_objective(p: usize, alpha: f64, c: f64) -> f64 {
    2.0 / c + c + 2.0 * p as f64 * c * c / alpha
}

/// Solve Theorem 1's optimality condition `4pc³ + αc² − 2α = 0`
/// (Equation 7) for its unique positive root.
pub fn solve_cubic(p: usize, alpha: f64) -> f64 {
    // g is strictly convex on (0, ∞) (g'' = 4/c³ + 4p/α > 0), so g' has a
    // single sign change; bisect it.
    let pf = p as f64;
    let f = |c: f64| 4.0 * pf * c * c * c + alpha * c * c - 2.0 * alpha;
    let mut lo = 1e-12;
    let mut hi = 2.0f64; // f(√2) = 4p·2√2 > 0 always; f(0) = −2α < 0.
    while f(hi) < 0.0 {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Optimal `c` for Theorem 1's constrained problem (Equations 5–6):
/// the cubic root clamped to the admissible range.
pub fn optimal_c(p: usize, alpha: f64) -> f64 {
    solve_cubic(p, alpha).min(c_max(p, alpha))
}

/// The optimal normalized ASGD guarantee for `p` learners (the value whose
/// ratio Theorem 1 bounds). Multiply by `σ²/(α·M)` for physical units.
pub fn optimal_guarantee(p: usize, alpha: f64) -> f64 {
    guarantee_objective(p, alpha, optimal_c(p, alpha))
}

/// Theorem 1's gap: the ratio of the optimal guarantee at `p` learners to
/// the guarantee at one learner — approximately `p/α` for `16 ≤ α ≤ p`.
///
/// ```
/// // The paper's worked example: p = 32, α ≈ 16 ⇒ gap ≈ 2.
/// let gap = sasgd_core::theory::theorem1_gap(32, 16.0);
/// assert!((1.5..3.0).contains(&gap));
/// ```
pub fn theorem1_gap(p: usize, alpha: f64) -> f64 {
    optimal_guarantee(p, alpha) / optimal_guarantee(1, alpha)
}

/// The learning rate `√(Df/(M K L σ²))` from Lian et al.'s analysis — the
/// rate that makes ASGD provably linear-speedup but is far too small in
/// practice (the γ = 0.005 of Fig 3 vs the practical γ = 0.1 of Fig 2).
pub fn lian_learning_rate(c: &ProblemConstants, m: usize, k: usize) -> f64 {
    (c.df / (m as f64 * k as f64 * c.l * c.sigma2)).sqrt()
}

// ---------------------------------------------------------------------------
// SASGD — Theorem 2, Corollary 3, Theorem 4.
// ---------------------------------------------------------------------------

/// Theorem 2: SASGD's average-gradient-norm bound after `K` global
/// allreduce updates with interval `T`, `p` learners, minibatch `m`.
/// Returns `None` when the admissibility condition
/// `γp·L·M·T·p + 2L²M²T²γpγ ≤ 1` fails.
pub fn sasgd_bound(
    c: &ProblemConstants,
    m: usize,
    t: usize,
    p: usize,
    k: usize,
    gamma: f64,
    gamma_p: f64,
) -> Option<f64> {
    let (mf, tf, pf, kf) = (m as f64, t as f64, p as f64, k as f64);
    let constraint =
        gamma_p * c.l * mf * tf * pf + 2.0 * c.l * c.l * mf * mf * tf * tf * gamma_p * gamma;
    if constraint > 1.0 + 1e-12 {
        return None;
    }
    let s = mf * tf * kf * pf;
    Some(
        2.0 * c.df / (s * gamma_p)
            + 2.0 * c.l * c.l * c.sigma2 * gamma_p * gamma * mf * tf
            + c.l * c.sigma2 * gamma_p,
    )
}

/// Corollary 3's learning rate `γ = γp = √(2Df/(S σ²))`.
pub fn corollary3_rate(c: &ProblemConstants, s: f64) -> f64 {
    (2.0 * c.df / (s * c.sigma2)).sqrt()
}

/// Corollary 3's minimum global-update count
/// `K ≥ (4 M L Df/σ²) · (max{p,T}+1)²/(pT)` for the asymptotic rate to
/// apply. Grows with `T` once `T > p` — the paper's warning.
pub fn corollary3_k_min(c: &ProblemConstants, m: usize, t: usize, p: usize) -> f64 {
    let mx = p.max(t) as f64 + 1.0;
    4.0 * m as f64 * c.l * c.df / c.sigma2 * mx * mx / (p as f64 * t as f64)
}

/// Corollary 3's asymptotic guarantee `4·√(Df L σ²/S)`.
pub fn corollary3_guarantee(c: &ProblemConstants, s: f64) -> f64 {
    4.0 * (c.df * c.l * c.sigma2 / s).sqrt()
}

/// The best Theorem 2 bound achievable at fixed sample budget `S` with
/// `γp = γ`, minimizing over the admissible `γ` (golden-section search on a
/// convex objective). This is the quantity Theorem 4 proves monotone
/// increasing in `T`.
pub fn sasgd_best_bound_fixed_s(c: &ProblemConstants, m: usize, t: usize, p: usize, s: f64) -> f64 {
    let (mf, tf, pf) = (m as f64, t as f64, p as f64);
    // Admissible γ: γLMTp + 2L²M²T²γ² ≤ 1. Solve the quadratic for γmax.
    let a = 2.0 * c.l * c.l * mf * mf * tf * tf;
    let b = c.l * mf * tf * pf;
    let gamma_max = (-b + (b * b + 4.0 * a).sqrt()) / (2.0 * a);
    let bound = |gamma: f64| {
        2.0 * c.df / (s * gamma)
            + 2.0 * c.l * c.l * c.sigma2 * gamma * gamma * mf * tf
            + c.l * c.sigma2 * gamma
    };
    // Golden-section over (0, γmax].
    let (mut lo, mut hi) = (gamma_max * 1e-9, gamma_max);
    let phi = 0.618_033_988_749_894_8_f64;
    for _ in 0..200 {
        let m1 = hi - phi * (hi - lo);
        let m2 = lo + phi * (hi - lo);
        if bound(m1) < bound(m2) {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    bound(0.5 * (lo + hi))
}

// ---------------------------------------------------------------------------
// Constant estimation from a model + dataset (used for Fig 3's γ).
// ---------------------------------------------------------------------------

/// Estimate `L`, `σ²` and `Df ≈ f(x₁)` for a model/dataset pair by probing
/// minibatch gradients, as the paper does for CIFAR-10 ("We estimate the
/// Lipschitz constant L and an upper bound on gradient variance σ²").
///
/// * `Df` — initial loss (cross-entropy is bounded below by 0).
/// * `σ²` — empirical variance of per-minibatch gradients around their
///   mean, scaled by `M` to approximate the per-sample bound.
/// * `L` — maximum observed `‖∇f(x) − ∇f(y)‖ / ‖x − y‖` over random
///   parameter perturbations.
pub fn estimate_constants(
    model: &mut Model,
    data: &Dataset,
    batch: usize,
    probes: usize,
    seed: u64,
) -> ProblemConstants {
    assert!(probes >= 2, "need at least two probes");
    let mut rng = SeedRng::new(seed);
    let shard = &data.shards(1)[0];
    let m_len = model.param_len();
    let x0 = model.param_vector();

    let grad_at = |model: &mut Model, params: &[f32], idx: &[usize], rng: &mut SeedRng| {
        model.write_params(params);
        model.zero_grads();
        let (x, y) = data.batch(idx);
        let mut ctx = Ctx::train(rng.split(0xD0));
        let out = model.forward_loss(&x, &y, &mut ctx);
        model.backward(&mut ctx);
        (model.grad_vector(), out.loss)
    };

    // Df and minibatch-gradient variance at x₁.
    let mut grads: Vec<Vec<f32>> = Vec::with_capacity(probes);
    let mut df = 0.0f64;
    for i in 0..probes {
        let idx = shard.random_batch(batch, &mut rng);
        let (g, loss) = grad_at(model, &x0, &idx, &mut rng);
        if i == 0 {
            df = f64::from(loss);
        }
        grads.push(g);
    }
    let mut mean = vec![0.0f64; m_len];
    for g in &grads {
        for (a, &b) in mean.iter_mut().zip(g) {
            *a += f64::from(b) / probes as f64;
        }
    }
    let mut var = 0.0f64;
    for g in &grads {
        var += g
            .iter()
            .zip(&mean)
            .map(|(&a, &b)| (f64::from(a) - b).powi(2))
            .sum::<f64>();
    }
    var /= probes as f64;
    // E‖G − ∇f‖² over minibatches of size M equals σ²/M for i.i.d.
    // samples, so the per-sample bound is M times the minibatch variance.
    let sigma2 = var * batch as f64;

    // Lipschitz probe: gradient change under small random perturbations,
    // same minibatch on both sides so only the parameter move matters.
    let mut l = 0.0f64;
    for _ in 0..probes {
        let idx = shard.random_batch(batch, &mut rng);
        let (g0, _) = grad_at(model, &x0, &idx, &mut rng);
        let step = 1e-2f32;
        let dir: Vec<f32> = (0..m_len).map(|_| rng.normal()).collect();
        let dn = dir
            .iter()
            .map(|v| f64::from(*v) * f64::from(*v))
            .sum::<f64>()
            .sqrt() as f32; // lint:allow(float-cast): norm computed in f64 for stability, consumed in f32 math
        let x1: Vec<f32> = x0
            .iter()
            .zip(&dir)
            .map(|(a, d)| a + step * d / dn)
            .collect();
        let (g1, _) = grad_at(model, &x1, &idx, &mut rng);
        let dg = g0
            .iter()
            .zip(&g1)
            .map(|(&a, &b)| (f64::from(a) - f64::from(b)).powi(2))
            .sum::<f64>()
            .sqrt();
        l = l.max(dg / f64::from(step));
    }
    model.write_params(&x0);
    ProblemConstants {
        df,
        l: l.max(1e-9),
        sigma2: sigma2.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consts() -> ProblemConstants {
        ProblemConstants {
            df: 2.3,
            l: 10.0,
            sigma2: 1.0,
        }
    }

    #[test]
    fn asgd_bound_rejects_large_gamma() {
        let c = consts();
        assert!(asgd_bound(&c, 64, 1000, 4, 10.0).is_none());
        assert!(asgd_bound(&c, 64, 1000, 4, 1e-6).is_some());
    }

    #[test]
    fn asgd_bound_has_learning_rate_sweet_spot() {
        // Too small → first term blows up; near the constraint → noise
        // terms dominate. A middle γ beats both.
        let c = consts();
        let b_small = asgd_bound(&c, 64, 10_000, 2, 1e-8).expect("valid");
        let b_mid = asgd_bound(&c, 64, 10_000, 2, 5e-5).expect("valid");
        assert!(b_mid < b_small);
    }

    #[test]
    fn cubic_root_satisfies_equation() {
        for &(p, a) in &[(1usize, 16.0f64), (8, 20.0), (32, 16.0), (16, 100.0)] {
            let cstar = solve_cubic(p, a);
            let r = 4.0 * p as f64 * cstar.powi(3) + a * cstar * cstar - 2.0 * a;
            assert!(r.abs() < 1e-6, "residual {r} at p={p}, α={a}");
            assert!(cstar > 0.0);
        }
    }

    #[test]
    fn single_learner_optimal_c_near_sqrt2() {
        // For p=1 and large α, the cubic root approaches √2 (§II-B).
        let c = optimal_c(1, 1000.0);
        assert!((c - 2.0f64.sqrt()).abs() < 0.01, "c = {c}");
    }

    #[test]
    fn large_p_hits_constraint_bound() {
        // For 16 ≤ α ≤ p the admissible range clamps: c* = c_max ≈ α/(√2 p).
        let (p, a) = (64usize, 16.0f64);
        let c = optimal_c(p, a);
        assert!((c - c_max(p, a)).abs() < 1e-12);
        let approx = a / (2.0f64.sqrt() * p as f64);
        assert!((c - approx).abs() / approx < 0.02, "c={c} approx={approx}");
    }

    #[test]
    fn theorem1_gap_is_about_p_over_alpha() {
        // The paper's worked example: p = 32, α ≈ 16 → gap ≈ 2.
        let gap = theorem1_gap(32, 16.0);
        assert!((1.5..3.0).contains(&gap), "gap {gap}");
        // And the general trend for 16 ≤ α ≤ p.
        for &(p, a) in &[(64usize, 16.0f64), (128, 32.0)] {
            let g = theorem1_gap(p, a);
            let predict = p as f64 / a;
            assert!(
                (g / predict - 1.0).abs() < 0.5,
                "p={p} α={a}: gap {g} vs p/α {predict}"
            );
        }
    }

    #[test]
    fn gap_grows_with_p() {
        let a = 16.0;
        let g8 = theorem1_gap(8, a);
        let g32 = theorem1_gap(32, a);
        let g128 = theorem1_gap(128, a);
        assert!(g8 < g32 && g32 < g128);
    }

    #[test]
    fn lian_rate_is_small_for_long_runs() {
        // Fig 3's derivation: the theory-backed γ is tiny next to the
        // practical 0.1 once K is large.
        let c = ProblemConstants {
            df: 2.3,
            l: 50.0,
            sigma2: 4.0,
        };
        let k = 500_000 / 64; // M·K = 500,000 as §II-B uses.
        let g = lian_learning_rate(&c, 64, k);
        assert!(g < 0.05, "γ = {g}");
    }

    #[test]
    fn sasgd_bound_constraint_and_value() {
        let c = consts();
        assert!(sasgd_bound(&c, 16, 50, 8, 100, 1.0, 1.0).is_none());
        let b = sasgd_bound(&c, 16, 50, 8, 100, 1e-6, 1e-6).expect("admissible");
        assert!(b.is_finite() && b > 0.0);
    }

    #[test]
    fn theorem4_bound_increases_with_t() {
        // Same S, same p: the best achievable bound worsens as T grows.
        let c = consts();
        let s = 1.0e7;
        let b1 = sasgd_best_bound_fixed_s(&c, 16, 1, 8, s);
        let b5 = sasgd_best_bound_fixed_s(&c, 16, 5, 8, s);
        let b50 = sasgd_best_bound_fixed_s(&c, 16, 50, 8, s);
        assert!(b1 <= b5 + 1e-12, "{b1} vs {b5}");
        assert!(b5 <= b50 + 1e-12, "{b5} vs {b50}");
        assert!(b50 > b1, "strictly worse over a 50× interval change");
    }

    #[test]
    fn corollary3_kmin_grows_with_t_beyond_p() {
        let c = consts();
        let k50 = corollary3_k_min(&c, 16, 50, 8);
        let k100 = corollary3_k_min(&c, 16, 100, 8);
        assert!(k100 > k50);
        // Asymptotic guarantee only depends on S.
        let g = corollary3_guarantee(&c, 1e8);
        assert!(g > 0.0 && g < corollary3_guarantee(&c, 1e6));
    }

    #[test]
    fn corollary3_rate_shrinks_with_s() {
        let c = consts();
        assert!(corollary3_rate(&c, 1e8) < corollary3_rate(&c, 1e4));
    }

    #[test]
    fn estimate_constants_on_tiny_model() {
        use sasgd_data::cifar_like::{generate, CifarLikeConfig};
        use sasgd_nn::models;
        let (train, _) = generate(&CifarLikeConfig::tiny(64, 8, 4));
        let mut model = models::tiny_cnn(4, &mut SeedRng::new(1));
        let c = estimate_constants(&mut model, &train, 8, 4, 42);
        assert!(c.df > 0.5, "initial CE loss near ln(4): {}", c.df);
        assert!(c.l > 0.0 && c.l.is_finite());
        assert!(c.sigma2 > 0.0 && c.sigma2.is_finite());
    }
}

//! Serial-vs-parallel kernel comparison at the paper's layer shapes:
//! Table I's first conv layer at batch 32 and the Table II NLC-F GEMMs.
//! Run with `--features parallel` on a multi-core host to see the rayon
//! speedup; without the feature both sides execute the serial kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use sasgd_tensor::conv::{conv2d_backward, conv2d_forward, Conv2dSpec};
use sasgd_tensor::{linalg, parallel, SeedRng, Tensor};

fn bench_conv_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels_parallel/table1_conv1_b32");
    g.sample_size(10);
    // Table I, layer 1: conv 3→64, 5×5, pad 2 on 32×32 images, batch 32.
    let spec = Conv2dSpec {
        ci: 3,
        co: 64,
        kh: 5,
        kw: 5,
        stride: 1,
        pad: 2,
    };
    let mut rng = SeedRng::new(1);
    let input = rng.normal_tensor(&[32, 3, 32, 32], 1.0);
    let weight = rng.normal_tensor(&[64, spec.patch_len()], 0.1);
    let bias = vec![0.01f32; 64];
    g.bench_function("forward/serial", |b| {
        parallel::configure_threads(1);
        b.iter(|| conv2d_forward(&input, &weight, &bias, &spec))
    });
    g.bench_function("forward/parallel", |b| {
        parallel::configure_threads(0);
        b.iter(|| conv2d_forward(&input, &weight, &bias, &spec))
    });
    let out = {
        parallel::configure_threads(0);
        conv2d_forward(&input, &weight, &bias, &spec)
    };
    let grad = Tensor::full(out.dims(), 1.0);
    g.bench_function("backward/serial", |b| {
        parallel::configure_threads(1);
        b.iter(|| conv2d_backward(&input, &weight, &grad, &spec))
    });
    g.bench_function("backward/parallel", |b| {
        parallel::configure_threads(0);
        b.iter(|| conv2d_backward(&input, &weight, &grad, &spec))
    });
    parallel::configure_threads(0);
    g.finish();
}

fn bench_nlc_gemms(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels_parallel/table2_nlc");
    g.sample_size(10);
    let mut rng = SeedRng::new(2);
    // Per-timestep fc 100→200 over batch 32 × 50 timesteps.
    let fc1_x = rng.normal_tensor(&[32 * 50, 100], 1.0);
    let fc1_w = rng.normal_tensor(&[100, 200], 0.1);
    g.bench_function("fc1/serial", |b| b.iter(|| linalg::matmul(&fc1_x, &fc1_w)));
    g.bench_function("fc1/parallel", |b| {
        b.iter(|| linalg::matmul_par(&fc1_x, &fc1_w))
    });
    // Temporal conv: 1000 kernels over window-2 patches of 200 channels.
    let tc_x = rng.normal_tensor(&[32 * 50, 400], 1.0);
    let tc_w = rng.normal_tensor(&[1000, 400], 0.05);
    g.bench_function("tconv/serial", |b| {
        b.iter(|| linalg::matmul_nt(&tc_x, &tc_w))
    });
    g.bench_function("tconv/parallel", |b| {
        b.iter(|| linalg::matmul_nt_par(&tc_x, &tc_w))
    });
    // fc 1000×1000 at batch 32.
    let fc2_x = rng.normal_tensor(&[32, 1000], 1.0);
    let fc2_w = rng.normal_tensor(&[1000, 1000], 0.03);
    g.bench_function("fc2/serial", |b| b.iter(|| linalg::matmul(&fc2_x, &fc2_w)));
    g.bench_function("fc2/parallel", |b| {
        b.iter(|| linalg::matmul_par(&fc2_x, &fc2_w))
    });
    g.finish();
}

criterion_group!(benches, bench_conv_table1, bench_nlc_gemms);
criterion_main!(benches);

//! Offline vendored mini-rayon.
//!
//! A small, deterministic re-implementation of the slice/range parallel
//! iterator surface this workspace uses, built on `std::thread::scope`.
//! Work is split into **contiguous index blocks** — item `i` is always
//! processed as item `i`, whichever worker runs it — so any computation
//! whose items are independent produces bitwise-identical results at every
//! thread count. That property is exactly the determinism contract the
//! SASGD kernels rely on (see `sasgd-tensor::parallel`).
//!
//! Differences from crates.io rayon:
//! * no work stealing — static contiguous partitioning only;
//! * combinators are eager and monomorphic (`par_chunks_mut`,
//!   `into_par_iter().map(..).collect()`, `for_each`, `enumerate`, `zip`);
//! * `ThreadPoolBuilder::build_global` just sets a global thread count;
//!   worker threads are scoped per call (no persistent pool).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod iter;
pub mod slice;

pub mod prelude {
    //! One-stop imports, mirroring `rayon::prelude`.
    pub use crate::iter::IntoParallelIterator;
    pub use crate::slice::ParallelSliceMut;
}

/// Configured global thread count; 0 = unset (use available parallelism).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Cached `available_parallelism` (0 = not probed yet). The std call reads
/// cgroup files on Linux — far too expensive for the per-kernel-dispatch
/// queries the compute hot path issues.
static AUTO_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => {
            let cached = AUTO_THREADS.load(Ordering::Relaxed);
            if cached != 0 {
                return cached;
            }
            let n = std::thread::available_parallelism().map_or(1, |n| n.get());
            AUTO_THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Error type for [`ThreadPoolBuilder::build_global`] (infallible here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Global thread-count configuration, mirroring rayon's builder API.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `n` worker threads (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the configuration globally. Unlike rayon, repeat calls are
    /// allowed and simply overwrite the previous count.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Run `op(i)` for every `i` in `0..n`, splitting `0..n` into at most
/// [`current_num_threads`] contiguous blocks. The item→index mapping is
/// independent of the split, so independent items are deterministic.
pub(crate) fn run_indexed<F: Fn(usize) + Sync>(n: usize, op: F) {
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        for i in 0..n {
            op(i);
        }
        return;
    }
    let base = n / threads;
    let extra = n % threads;
    let op = &op;
    std::thread::scope(|scope| {
        let mut start = 0usize;
        for w in 0..threads {
            let len = base + usize::from(w < extra);
            let range = start..start + len;
            start += len;
            scope.spawn(move || {
                for i in range {
                    op(i);
                }
            });
        }
    });
}

/// A `*mut T` that may cross thread boundaries. Safety rests on callers
/// touching disjoint index ranges only.
pub(crate) struct SharedPtr<T>(pub *mut T);

unsafe impl<T: Send> Send for SharedPtr<T> {}
unsafe impl<T: Send> Sync for SharedPtr<T> {}

impl<T> Clone for SharedPtr<T> {
    fn clone(&self) -> Self {
        SharedPtr(self.0)
    }
}

impl<T> Copy for SharedPtr<T> {}

/// Parallel map over `range` collecting results in index order.
pub(crate) fn map_collect_range<T: Send, F: Fn(usize) -> T + Sync>(
    range: Range<usize>,
    f: F,
) -> Vec<T> {
    let n = range.end.saturating_sub(range.start);
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let ptr = SharedPtr(out.as_mut_ptr());
    // Capture the SharedPtr wrapper (Sync), not its raw-pointer field —
    // 2021 disjoint capture would otherwise grab the non-Sync `*mut`.
    let ptr = &ptr;
    let start = range.start;
    run_indexed(n, move |i| {
        let v = f(start + i);
        // SAFETY: each i writes exactly its own slot; slots are disjoint
        // and the Vec outlives the scoped threads inside run_indexed.
        unsafe { *ptr.0.add(i) = Some(v) };
    });
    out.into_iter()
        .map(|v| v.expect("slot filled by parallel map"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn chunks_cover_everything_once() {
        ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global()
            .expect("build");
        let mut data = vec![0u32; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (i * 10 + j) as u32;
            }
        });
        let expect: Vec<u32> = (0..103).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn map_collect_preserves_order() {
        ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .expect("build");
        let out: Vec<usize> = (0..57usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out, (0..57).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zip_walks_paired_chunks() {
        let mut a = vec![0f32; 12];
        let mut b = vec![0u32; 6];
        a.par_chunks_mut(4)
            .zip(b.par_chunks_mut(2))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                ca.iter_mut().for_each(|x| *x = i as f32);
                cb.iter_mut().for_each(|x| *x = i as u32);
            });
        assert_eq!(a, vec![0., 0., 0., 0., 1., 1., 1., 1., 2., 2., 2., 2.]);
        assert_eq!(b, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn single_thread_falls_back_inline() {
        ThreadPoolBuilder::new()
            .num_threads(1)
            .build_global()
            .expect("build");
        let mut data = vec![1u32; 8];
        data.par_chunks_mut(3)
            .for_each(|c| c.iter_mut().for_each(|x| *x += 1));
        assert!(data.iter().all(|&x| x == 2));
        // Restore automatic sizing for other tests.
        ThreadPoolBuilder::new().build_global().expect("build");
    }
}

//! Integration tests for both analyzer legs.
//!
//! * The lint pass must fire on every bad fixture, stay silent on every
//!   good fixture, and report **zero** violations on the real tree.
//! * The race checker must certify the shipped collectives
//!   schedule-invariant, catch the arrival-order bad reduce bitwise, and
//!   flag the deliberate recv cycle with a held-resource report.

use std::collections::BTreeSet;
use std::time::Duration;

use sasgd_analysis::lints::{call_taint_single, lint_file};
use sasgd_analysis::scan::{fixtures_dir, lint_fixture_corpus, lint_repo, repo_root};
use sasgd_analysis::schedule::{
    exhaustive_schedules, random_schedules, scenario_allreduce_tree, scenario_bad_reduce,
    scenario_deadlock, scenario_hierarchical, scenario_ps, scenario_sparse_allreduce,
};

fn fixture_lints(name: &str) -> Vec<&'static str> {
    let path = fixtures_dir().join(name);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    let virtual_path = src
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("// virtual-path:"))
        .map(|s| s.trim().to_string())
        .expect("fixture declares a virtual path");
    // Per-file lints plus the degenerate one-file-crate `call-taint` pass —
    // the same combination `lint_fixture_corpus` runs.
    let mut v = lint_file(&virtual_path, &src);
    v.extend(call_taint_single(&virtual_path, &src));
    v.into_iter().map(|v| v.lint).collect()
}

#[test]
fn every_bad_fixture_fires_its_lint() {
    // Two `use`s plus two signature mentions: the lint is per occurrence.
    assert_eq!(
        fixture_lints("bad/map_iter.rs"),
        vec!["map-iter", "map-iter", "map-iter", "map-iter"]
    );
    assert_eq!(fixture_lints("bad/unsafe_unlisted.rs"), vec!["unsafe"]);
    assert_eq!(fixture_lints("bad/unsafe_undocumented.rs"), vec!["unsafe"]);
    assert_eq!(
        fixture_lints("bad/wall_clock.rs"),
        vec!["wall-clock", "wall-clock", "wall-clock"]
    );
    assert_eq!(
        fixture_lints("bad/raw_spawn.rs"),
        vec!["raw-spawn", "raw-spawn"]
    );
    assert_eq!(
        fixture_lints("bad/hot_alloc.rs"),
        vec!["hot-alloc", "hot-alloc", "hot-alloc"]
    );
    assert_eq!(
        fixture_lints("bad/float_cast.rs"),
        vec!["float-cast", "float-cast", "float-cast"]
    );
    // `.unwrap()` and `.expect()` each fire once.
    assert_eq!(
        fixture_lints("bad/comm_unwrap.rs"),
        vec!["comm-unwrap", "comm-unwrap"]
    );
    // Both tainted call edges fire: decay_seed -> thread_salt and
    // scale_gradients -> decay_seed.
    assert_eq!(
        fixture_lints("bad/call_taint.rs"),
        vec!["call-taint", "call-taint"]
    );
}

#[test]
fn every_good_fixture_is_clean() {
    for name in [
        "good/map_btree.rs",
        "good/unsafe_documented.rs",
        "good/wall_clock_threaded.rs",
        "good/spawn_comm.rs",
        "good/hot_ws.rs",
        "good/float_promote.rs",
        "good/comm_propagate.rs",
        "good/call_taint_local.rs",
    ] {
        let fired = fixture_lints(name);
        assert!(fired.is_empty(), "{name} fired {fired:?}");
    }
}

#[test]
fn corpus_exercises_every_lint_id() {
    let (files, violations) = lint_fixture_corpus(&fixtures_dir());
    assert!(files >= 16, "expected the full corpus, saw {files} files");
    let fired: BTreeSet<&str> = violations.iter().map(|v| v.lint).collect();
    for id in sasgd_analysis::lints::LINT_IDS {
        assert!(fired.contains(id), "no fixture fires `{id}` — lint is dead");
    }
}

#[test]
fn real_tree_is_clean() {
    let run = lint_repo(&repo_root());
    assert!(
        run.files_scanned > 40,
        "scan found only {} files",
        run.files_scanned
    );
    let msgs: Vec<String> = run
        .violations
        .iter()
        .map(|v| format!("[{}] {}:{} {}", v.lint, v.file, v.line, v.message))
        .collect();
    assert!(
        msgs.is_empty(),
        "lint violations on the real tree:\n{}",
        msgs.join("\n")
    );
}

// ---------------------------------------------------------------------------
// Race-checker leg.
// ---------------------------------------------------------------------------

#[test]
fn allreduce_tree_is_schedule_invariant_exhaustive() {
    for p in [2usize, 3, 4] {
        let r = scenario_allreduce_tree(p, &exhaustive_schedules(p));
        assert_eq!(r.distinct_results, 1, "p={p}: {r:?}");
        assert_eq!(r.deadlocks, 0, "p={p}: {r:?}");
    }
}

#[test]
fn sparse_allreduce_is_schedule_invariant() {
    let r = scenario_sparse_allreduce(4, &exhaustive_schedules(4));
    assert_eq!(r.distinct_results, 1, "{r:?}");
    assert_eq!(r.deadlocks, 0);
}

#[test]
fn hierarchical_allreduce_is_schedule_invariant() {
    let r = scenario_hierarchical(2, 2, &exhaustive_schedules(4));
    assert_eq!(r.distinct_results, 1, "{r:?}");
    assert_eq!(r.deadlocks, 0);
}

#[test]
fn random_schedules_at_p8_are_invariant() {
    let r = scenario_allreduce_tree(8, &random_schedules(8, 6, 0xfeed));
    assert_eq!(r.distinct_results, 1, "{r:?}");
    assert_eq!(r.deadlocks, 0);
}

#[test]
fn ps_path_has_no_lost_updates() {
    let r = scenario_ps(4, 2, 5, &exhaustive_schedules(4));
    assert_eq!(r.lost_updates, 0, "{r:?}");
    assert_eq!(r.deadlocks, 0);
    assert_eq!(r.distinct_results, 1, "commuting adds must converge: {r:?}");
}

/// Regression: a reduce that combines children in *arrival* order must be
/// caught by the bitwise-invariance assertion. This is the test that proves
/// the checker can actually see the class of bug it exists for.
#[test]
fn arrival_order_reduce_is_caught() {
    let r = scenario_bad_reduce(3, &exhaustive_schedules(3));
    assert!(
        r.distinct_results > 1,
        "bad reduce produced one result across {} schedules — checker is blind: {r:?}",
        r.schedules
    );
}

/// Regression: a recv cycle must trip the watchdog and the report must name
/// the resource each rank is blocked on.
#[test]
fn recv_cycle_is_reported_with_held_resources() {
    let r = scenario_deadlock(2);
    assert_eq!(r.deadlocks, 1, "{r:?}");
    let report = &r.deadlock_reports[0];
    assert!(
        report.contains("rank 0 blocked on (src 1, tag 99)"),
        "{report}"
    );
    assert!(
        report.contains("rank 1 blocked on (src 0, tag 99)"),
        "{report}"
    );
}

/// The schedule generators themselves: exhaustive really is p! × 3, and the
/// seeded stream is reproducible.
#[test]
fn schedule_generators_are_deterministic() {
    assert_eq!(exhaustive_schedules(3).len(), 18); // 3! × 3 bases
    assert_eq!(exhaustive_schedules(4).len(), 72); // 4! × 3 bases
    let a = random_schedules(8, 4, 42);
    let b = random_schedules(8, 4, 42);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.start, y.start);
        assert_eq!(x.delays.send, y.delays.send);
        assert_eq!(x.delays.recv, y.delays.recv);
    }
    let c = random_schedules(8, 4, 43);
    assert!(a
        .iter()
        .zip(&c)
        .any(|(x, y)| x.delays.send != y.delays.send));
}

/// Delay injection must not alter the *values* a collective computes, only
/// their timing — spot-check against an undelayed run.
#[test]
fn delays_do_not_change_results() {
    use sasgd_analysis::schedule::{explore_with, Schedule};
    use std::sync::Arc;
    let none = vec![Schedule::default()];
    let some = exhaustive_schedules(2);
    let scenario = Arc::new(|rank: usize, comm: &mut sasgd_comm::Communicator| {
        let mut v = vec![rank as f32 + 1.0; 4];
        sasgd_comm::collectives::allreduce_tree(comm, &mut v).expect("allreduce");
        v
    });
    let a = explore_with("plain", 2, &none, scenario.clone(), Duration::from_secs(5));
    let b = explore_with("delayed", 2, &some, scenario, Duration::from_secs(5));
    assert_eq!(a.distinct_results, 1);
    assert_eq!(b.distinct_results, 1);
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "delay injection changed the computed values, not just their timing"
    );
}

//! Cross-crate equivalence tests: the simulated trainer, the threaded
//! backend and the sequential baseline must agree where the algorithms
//! coincide mathematically.

use sasgd::core::algorithms::GammaP;
use sasgd::core::{
    run_threaded_sasgd, train, Algorithm, Backend, Cadence, Executor, TSchedule, TrainConfig,
};
use sasgd::data::cifar_like::{generate, CifarLikeConfig};
use sasgd::nn::models;
use sasgd::simnet::JitterModel;
use sasgd::tensor::SeedRng;

fn quiet_cfg(epochs: usize, gamma: f32, seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::new(epochs, 8, gamma, seed);
    cfg.jitter = JitterModel::none();
    cfg
}

#[test]
fn threaded_equals_simulated_sasgd_bitwise() {
    // Same seeds, same batch orders, same binomial-tree reduction order:
    // the two backends must produce identical accuracy trajectories.
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(128, 32, 3));
    for (p, t) in [(2usize, 1usize), (4, 2), (3, 5)] {
        let cfg = quiet_cfg(3, 0.05, 21);
        let factory = || models::tiny_cnn(3, &mut SeedRng::new(5));
        let h_thread =
            run_threaded_sasgd(&factory, &train_set, &test_set, &cfg, p, t, GammaP::OverP);
        let mut f = || models::tiny_cnn(3, &mut SeedRng::new(5));
        let algo = Algorithm::Sasgd {
            p,
            t,
            gamma_p: GammaP::OverP,
            compression: None,
        };
        let h_sim = train(&mut f, &train_set, &test_set, &algo, &cfg);
        assert_eq!(h_thread.records.len(), h_sim.records.len());
        for (a, b) in h_thread.records.iter().zip(&h_sim.records) {
            assert_eq!(
                a.train_loss, b.train_loss,
                "p={p} T={t}: train loss diverged"
            );
            assert_eq!(
                a.test_acc, b.test_acc,
                "p={p} T={t}: test accuracy diverged"
            );
            assert_eq!(
                a.train_acc, b.train_acc,
                "p={p} T={t}: train accuracy diverged"
            );
        }
        // Parameter-for-parameter, not just trajectory-for-trajectory:
        // the final flat parameter vectors must be bitwise equal. With
        // `--features parallel` this pins the determinism contract of the
        // rayon kernels under real OS threads against the serial simulator.
        let pt = h_thread.final_params.expect("threaded final params");
        let ps = h_sim.final_params.expect("simulated final params");
        assert_eq!(pt.len(), ps.len());
        let diverged = pt.iter().zip(&ps).filter(|(a, b)| a != b).count();
        assert_eq!(
            diverged,
            0,
            "p={p} T={t}: {diverged}/{} final parameters diverged",
            pt.len()
        );
    }
}

/// Run `algo` on both engine backends and assert bitwise-equal final
/// parameters.
fn assert_backends_agree(algo: &Algorithm, cfg: &TrainConfig, model_seed: u64) {
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(96, 24, 3));
    let factory = move || models::tiny_cnn(3, &mut SeedRng::new(model_seed));
    let sim = Executor::new(Backend::Simulated).run(&factory, &train_set, &test_set, algo, cfg);
    let thr = Executor::new(Backend::Threaded).run(&factory, &train_set, &test_set, algo, cfg);
    let ps = sim.final_params.expect("simulated final params");
    let pt = thr.final_params.expect("threaded final params");
    assert_eq!(ps.len(), pt.len());
    let diverged = ps
        .iter()
        .zip(&pt)
        .filter(|(a, b)| a.to_bits() != b.to_bits())
        .count();
    assert_eq!(
        diverged,
        0,
        "{}: {diverged}/{} final parameters diverged between backends",
        sim.label,
        ps.len()
    );
}

#[test]
fn threaded_equals_simulated_downpour_p1_bitwise() {
    // With a single learner the asynchronous schedule collapses: pushes and
    // pulls alternate deterministically, the γ schedule sees the same
    // sample counts, and the batch stream reshuffles from the same RNG —
    // so the real parameter server must reproduce the simulated one bit
    // for bit. (Beyond p = 1 the OS scheduler decides the interleaving;
    // that divergence is the phenomenon the backend exists to exhibit.)
    assert_backends_agree(
        &Algorithm::Downpour {
            p: 1,
            t: 2,
            staleness_gamma: false,
        },
        &quiet_cfg(3, 0.04, 17),
        5,
    );
}

#[test]
fn threaded_equals_simulated_eamsgd_p1_bitwise() {
    // Same collapse for elastic averaging: one learner's momentum block
    // and elastic exchange against a real center server must match the
    // simulated strategy exactly.
    assert_backends_agree(
        &Algorithm::Eamsgd {
            p: 1,
            t: 2,
            moving_rate: Some(0.5),
            momentum: 0.9,
            staleness_gamma: false,
        },
        &quiet_cfg(3, 0.04, 19),
        5,
    );
}

#[test]
fn threaded_equals_simulated_local_sgd_bitwise() {
    // Parameter averaging is allreduce-shaped: one rank-independent γ per
    // round and a binomial-tree reduction, so real threads must reproduce
    // the simulated event engine bit for bit at ANY p, not just p=1.
    for p in [1usize, 4] {
        assert_backends_agree(
            &Algorithm::LocalSgd {
                p,
                schedule: TSchedule::Fixed { t: 2 },
            },
            &quiet_cfg(3, 0.05, 23),
            5,
        );
    }
}

#[test]
fn threaded_equals_simulated_adaptive_local_sgd_bitwise() {
    // The adaptive policy is driven by the average-displacement signal,
    // which both backends compute from identical floats — so the interval
    // doublings land on the same rounds and the trajectories stay bitwise
    // equal.
    assert_backends_agree(
        &Algorithm::LocalSgd {
            p: 4,
            schedule: TSchedule::AdaptivePlateau {
                t0: 1,
                t_max: 8,
                patience: 1,
                rel_improve: 0.2,
            },
        },
        &quiet_cfg(3, 0.05, 29),
        5,
    );
}

#[test]
fn threaded_equals_simulated_delayed_avg_bitwise() {
    // Delayed averaging is also allreduce-shaped (the delay changes when
    // the average lands, not the float sequence), so the cross-backend
    // contract again holds at any p.
    for p in [1usize, 4] {
        assert_backends_agree(
            &Algorithm::DelayedAvg { p, t: 2 },
            &quiet_cfg(3, 0.05, 31),
            5,
        );
    }
}

#[test]
fn event_driven_p1_collapses_to_simulated_bitwise() {
    // At p=1 the event-driven engine has no scheduling freedom left: every
    // strategy's threaded run must reproduce the simulated one bit for
    // bit. (Downpour and EAMSGD p=1 are pinned by the dedicated tests
    // above; these are the collective strategies under an explicit
    // event-driven cadence.)
    let mut cfg = quiet_cfg(2, 0.05, 37);
    cfg.cadence = Some(Cadence::EventDriven);
    for algo in [
        Algorithm::Sequential,
        Algorithm::Sasgd {
            p: 1,
            t: 2,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        Algorithm::HierarchicalSasgd {
            groups: 1,
            per_group: 1,
            t_local: 2,
            t_global: 2,
            gamma_p: GammaP::OverP,
        },
        Algorithm::ModelAverageOnce { p: 1 },
        Algorithm::LocalSgd {
            p: 1,
            schedule: TSchedule::Fixed { t: 2 },
        },
        Algorithm::DelayedAvg { p: 1, t: 2 },
    ] {
        assert_backends_agree(&algo, &cfg, 5);
    }
}

#[test]
fn sync_sgd_is_sasgd_with_t1() {
    // T=1 SASGD is classic synchronous SGD; doubling T=1's γp via the
    // Fixed policy must equal OverP at 2γ — a consistency check of the
    // γp plumbing.
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(96, 24, 3));
    let cfg = quiet_cfg(2, 0.05, 9);
    let p = 4;
    let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(7));
    let a = train(
        &mut f1,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p,
            t: 1,
            gamma_p: GammaP::Fixed(0.05 / p as f32),
            compression: None,
        },
        &cfg,
    );
    let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(7));
    let b = train(
        &mut f2,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p,
            t: 1,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        &cfg,
    );
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.train_loss, y.train_loss);
    }
}

#[test]
fn downpour_p1_t1_tracks_sequential_closely() {
    // One asynchronous learner has no one to be stale against. The local
    // step does NOT compound with the server step: the server applies γ·g
    // to the same pre-step parameters and the pull overwrites the local
    // replica with that result, so each round moves the model by exactly
    // one γ·g — sequential SGD at the *same* γ. (With p=1 the learner's
    // shard is the whole set and the batch streams coincide, so the
    // trajectories agree to within accumulation noise.)
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(96, 48, 3));
    let cfg = quiet_cfg(4, 0.02, 13);
    let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(3));
    let dp = train(
        &mut f1,
        &train_set,
        &test_set,
        &Algorithm::Downpour {
            p: 1,
            t: 1,
            staleness_gamma: false,
        },
        &cfg,
    );
    let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(3));
    let seq = train(&mut f2, &train_set, &test_set, &Algorithm::Sequential, &cfg);
    let d = dp.final_test_acc();
    let s = seq.final_test_acc();
    assert!(
        (d - s).abs() < 1e-6,
        "Downpour p=1 ({d}) should match sequential SGD at the same γ ({s})"
    );
}

#[test]
fn gamma_p_policies_change_trajectories() {
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(96, 24, 3));
    let cfg = quiet_cfg(2, 0.05, 1);
    let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(1));
    let over_p = train(
        &mut f1,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 4,
            t: 2,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        &cfg,
    );
    let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(1));
    let same = train(
        &mut f2,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 4,
            t: 2,
            gamma_p: GammaP::SameAsGamma,
            compression: None,
        },
        &cfg,
    );
    assert_ne!(
        over_p.records[0].train_loss, same.records[0].train_loss,
        "γp = γ vs γ/p must differ with 4 learners"
    );
}

//! A minimal, self-contained Rust lexer for the lint pass.
//!
//! The workspace builds fully offline, so instead of a vendored `syn` the
//! lint pass runs on a hand-rolled token stream: identifiers, punctuation,
//! literals, and — crucially — *comments*, which carry the repo's
//! annotation grammar (`// lint:allow(id)`, `// SAFETY:`, `// hot-path`).
//! Strings, raw strings, chars, lifetimes, and nested block comments are
//! lexed properly so banned identifiers inside literals or docs never
//! false-positive, and brace depth over the token stream recovers the
//! function-body structure the hot-path lint needs.

/// Token category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// Punctuation. `::` is fused into one token; everything else is one char.
    Punct,
    /// Numeric literal (`1`, `0x1f`, `1.5e-3`, …).
    Num,
    /// String / char / byte literal (contents opaque to the lints).
    Lit,
    /// Lifetime (`'a`).
    Lifetime,
    /// Line or block comment, text included.
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Is this a non-comment token with exactly this text?
    pub fn is(&self, text: &str) -> bool {
        self.kind != TokKind::Comment && self.text == text
    }

    /// Does a numeric literal denote a float (`1.5`, `2e8`, `1f32`)?
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokKind::Num {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
            return false;
        }
        t.contains('.')
            || t.contains('e')
            || t.contains('E')
            || t.contains("f32")
            || t.contains("f64")
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a token stream. Unterminated constructs are closed at
/// end-of-file rather than panicking — the linter must survive any input.
pub fn lex(src: &str) -> Vec<Tok> {
    let cs: Vec<char> = src.chars().collect();
    let n = cs.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    // Count newlines in cs[from..to] (for multi-line tokens).
    let newlines = |from: usize, to: usize| -> u32 {
        cs[from..to.min(n)].iter().filter(|&&c| c == '\n').count() as u32
    };
    let text_of = |from: usize, to: usize| -> String { cs[from..to.min(n)].iter().collect() };

    while i < n {
        let c = cs[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && cs[i + 1] == '/' {
            let start = i;
            while i < n && cs[i] != '\n' {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Comment,
                text: text_of(start, i),
                line,
            });
            continue;
        }
        if c == '/' && i + 1 < n && cs[i + 1] == '*' {
            let start = i;
            let start_line = line;
            i += 2;
            let mut depth = 1usize;
            while i < n && depth > 0 {
                if cs[i] == '/' && i + 1 < n && cs[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if cs[i] == '*' && i + 1 < n && cs[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if cs[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Comment,
                text: text_of(start, i),
                line: start_line,
            });
            continue;
        }
        // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…'.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(cs[i]) {
                i += 1;
            }
            let word = text_of(start, i);
            let next = cs.get(i).copied();
            if (word == "r" || word == "br" || word == "rb")
                && matches!(next, Some('"') | Some('#'))
            {
                // Raw string: count hashes, then scan to `"` + hashes.
                let mut hashes = 0usize;
                while i < n && cs[i] == '#' {
                    hashes += 1;
                    i += 1;
                }
                if i < n && cs[i] == '"' {
                    i += 1;
                    let body_start = i;
                    'scan: while i < n {
                        if cs[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && i + 1 + k < n && cs[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                line += newlines(body_start, i);
                                i += 1 + hashes;
                                break 'scan;
                            }
                        }
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lit,
                        text: String::new(),
                        line,
                    });
                    continue;
                }
                // `r#ident` raw identifier: fall through as ident.
                let start2 = i;
                while i < n && is_ident_continue(cs[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: text_of(start2, i),
                    line,
                });
                continue;
            }
            if word == "b" && matches!(next, Some('"') | Some('\'')) {
                // Byte string / byte char: handled by the generic scanners below.
                // Fall through without emitting the prefix as an ident.
            } else {
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: word,
                    line,
                });
                continue;
            }
        }
        let c = cs[i];
        // String literal (also reached for the `b"` prefix above).
        if c == '"' {
            let start_line = line;
            i += 1;
            while i < n {
                match cs[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            toks.push(Tok {
                kind: TokKind::Lit,
                text: String::new(),
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = cs.get(i + 1).copied();
            let after = cs.get(i + 2).copied();
            let is_lifetime = matches!(next, Some(nc) if is_ident_start(nc)) && after != Some('\'');
            if is_lifetime {
                let start = i + 1;
                i += 1;
                while i < n && is_ident_continue(cs[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: text_of(start, i),
                    line,
                });
            } else {
                i += 1;
                while i < n {
                    match cs[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: String::new(),
                    line,
                });
            }
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (is_ident_continue(cs[i])) {
                i += 1;
            }
            // Fractional part — but not `..` ranges or method calls like `1.max(2)`.
            if i + 1 < n && cs[i] == '.' && cs[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && (cs[i].is_ascii_digit() || cs[i] == '_') {
                    i += 1;
                }
                // Exponent after the fraction (`1.5e-3`).
                if i < n && (cs[i] == 'e' || cs[i] == 'E') {
                    let mut j = i + 1;
                    if j < n && (cs[j] == '+' || cs[j] == '-') {
                        j += 1;
                    }
                    if j < n && cs[j].is_ascii_digit() {
                        i = j;
                        while i < n && cs[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                // Type suffix (`1.0f32`).
                while i < n && is_ident_continue(cs[i]) {
                    i += 1;
                }
            } else if i < n
                && (cs[i] == '+' || cs[i] == '-')
                && i > start
                && (cs[i - 1] == 'e' || cs[i - 1] == 'E')
                && !text_of(start, i).starts_with("0x")
            {
                // `1e-3`: the ident scan stopped at the sign.
                i += 1;
                while i < n && cs[i].is_ascii_digit() {
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: text_of(start, i),
                line,
            });
            continue;
        }
        // Punctuation; fuse `::`.
        if c == ':' && i + 1 < n && cs[i + 1] == ':' {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: "::".to_string(),
                line,
            });
            i += 2;
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_paths() {
        let t = kinds("std::thread::spawn(x)");
        assert_eq!(t[0], (TokKind::Ident, "std".into()));
        assert_eq!(t[1], (TokKind::Punct, "::".into()));
        assert_eq!(t[2], (TokKind::Ident, "thread".into()));
        assert_eq!(t[4], (TokKind::Ident, "spawn".into()));
    }

    #[test]
    fn strings_hide_identifiers() {
        let t = lex("let s = \"HashMap::new() unsafe\"; let h = 1;");
        assert!(!t
            .iter()
            .any(|x| x.kind == TokKind::Ident && x.text == "HashMap"));
        assert!(!t
            .iter()
            .any(|x| x.kind == TokKind::Ident && x.text == "unsafe"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let t = lex("let s = r#\"Instant::now \"quoted\" \"#; next");
        assert!(!t.iter().any(|x| x.text == "Instant"));
        assert!(t.iter().any(|x| x.is("next")));
    }

    #[test]
    fn comments_preserved_with_lines() {
        let t = lex("// lint:allow(map-iter)\nlet x = 1; /* block\nspanning */ y");
        assert_eq!(t[0].kind, TokKind::Comment);
        assert!(t[0].text.contains("lint:allow(map-iter)"));
        assert_eq!(t[0].line, 1);
        let y = t.iter().find(|x| x.is("y")).unwrap();
        assert_eq!(y.line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let t = lex("/* a /* b */ c */ ident");
        assert_eq!(t.len(), 2);
        assert!(t[1].is("ident"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(t.iter().filter(|x| x.kind == TokKind::Lifetime).count(), 2);
        assert_eq!(t.iter().filter(|x| x.kind == TokKind::Lit).count(), 2);
    }

    #[test]
    fn float_detection() {
        let f = |s: &str| lex(s)[0].is_float_literal();
        assert!(f("1.5"));
        assert!(f("2e8"));
        assert!(f("1.5e-3"));
        assert!(f("1f32"));
        assert!(!f("17"));
        assert!(!f("0x1f"));
        // A range must not swallow the dots.
        let t = lex("0..n");
        assert_eq!(t[0].text, "0");
        assert!(!t[0].is_float_literal());
    }

    #[test]
    fn numeric_exponent_with_sign() {
        let t = lex("1e-3 + 2");
        assert_eq!(t[0].text, "1e-3");
        assert!(t[0].is_float_literal());
        assert_eq!(t[1].text, "+");
    }
}

//! EAMSGD — elastic-averaging asynchronous SGD (Zhang, Choromanska, LeCun,
//! NIPS 2015), the paper's stronger baseline.
//!
//! Each learner runs *momentum* SGD on its own replica; every `τ` (= `T`)
//! minibatches it exchanges an elastic force with a center variable `x̃`
//! kept on the parameter server:
//!
//! ```text
//! diff = α (xᵢ − x̃);   xᵢ ← xᵢ − diff;   x̃ ← x̃ + diff
//! ```
//!
//! The default moving rate is `α = β/p` with `β = 0.9`, as recommended in
//! the EAMSGD paper. Communication cost per round equals a parameter-server
//! round trip (pull `x̃`, push `diff`). As in the EASGD/EAMSGD setting (and
//! [`super::downpour`]), the training data is partitioned across learners:
//! each replica streams minibatches from its own shard. Asynchrony is
//! realized the same way as in [`super::downpour`]: completion events
//! ordered by virtual time.

use sasgd_data::{make_shards, Dataset};
use sasgd_nn::Model;
use sasgd_simnet::{EventQueue, VirtualTime};

use crate::algorithms::downpour::{block_duration, BatchStream};
use crate::history::{History, StalenessStats};
use crate::trainer::{EvalSets, Learner, TrainConfig};

struct Block {
    learner: usize,
    start: f64,
}

/// Run EAMSGD.
#[allow(clippy::too_many_arguments)] // mirrors the Eamsgd variant's fields
pub(crate) fn run(
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
    t: usize,
    moving_rate: Option<f32>,
    momentum: f32,
) -> History {
    assert!(p >= 1 && t >= 1);
    assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
    let alpha = moving_rate.unwrap_or(0.9 / p as f32);
    assert!(alpha > 0.0 && alpha <= 1.0, "moving rate out of range");

    let mut learners: Vec<Learner> = (0..p).map(|id| Learner::new(id, factory(), cfg)).collect();
    let m = learners[0].model.param_len();
    let macs = learners[0].model.macs_per_sample();
    let mut center: Vec<f32> = learners[0].model.param_vector();
    for l in &mut learners {
        l.model.write_params(&center);
    }
    let mut velocities: Vec<Vec<f32>> = vec![vec![0.0; m]; p];

    let evals = EvalSets::prepare(train_set, test_set, cfg.eval_cap);
    let n = train_set.len();
    let step_s = cfg.cost.minibatch_compute(macs, cfg.batch_size, p);
    let comm_round = cfg.cost.ps_roundtrip(m, p).seconds;
    let target_samples = (cfg.epochs as u64) * (n as u64);

    let mut streams: Vec<BatchStream> = make_shards(train_set, p, cfg.shard_strategy)
        .into_iter()
        .map(|s| BatchStream::new(s.indices().to_vec(), cfg.batch_size))
        .collect();
    let mut queue: EventQueue<Block> = EventQueue::new();
    for (id, l) in learners.iter_mut().enumerate() {
        let dur = block_duration(l, t, step_s, cfg);
        queue.push(
            VirtualTime(dur),
            Block {
                learner: id,
                start: 0.0,
            },
        );
    }

    let mut history = History::new(format!("EAMSGD(p={p},T={t})"), p, t);
    let mut samples = 0u64;
    let mut recorded_passes = 0u64;
    let mut center_version = 0u64;
    let mut pulled_version = vec![0u64; p];
    let mut staleness_obs: Vec<u64> = Vec::new();

    while let Some((tv, block)) = queue.pop() {
        let id = block.learner;
        // τ momentum-SGD steps on the local replica.
        let gamma_now = cfg.gamma_at(samples as f64 / n as f64);
        for _ in 0..t {
            let idx = {
                let l = &mut learners[id];
                streams[id].next(&mut l.rng)
            };
            samples += idx.len() as u64;
            let (g, _) = learners[id].compute_gradient(train_set, &idx);
            let mut params = learners[id].model.param_vector();
            let v = &mut velocities[id];
            for ((vi, pi), &gi) in v.iter_mut().zip(params.iter_mut()).zip(&g) {
                *vi = momentum * *vi - gamma_now * gi;
                *pi += *vi;
            }
            learners[id].model.write_params(&params);
        }
        {
            let l = &mut learners[id];
            l.compute_s += tv.seconds() - block.start;
            l.clock = tv.seconds();
            // Elastic exchange with the center.
            staleness_obs.push(center_version - pulled_version[id]);
            center_version += 1;
            pulled_version[id] = center_version;
            let mut params = l.model.param_vector();
            for (pi, ci) in params.iter_mut().zip(center.iter_mut()) {
                let diff = alpha * (*pi - *ci);
                *pi -= diff;
                *ci += diff;
            }
            l.model.write_params(&params);
            l.charge_comm(comm_round);
        }
        if id == 0 && streams[0].completed_passes() > recorded_passes {
            recorded_passes = streams[0].completed_passes();
            let epoch = samples as f64 / n as f64;
            let (comp, comm) = (learners[0].compute_s, learners[0].comm_s);
            let rec = evals.record(&mut learners[0].model, epoch, comp, comm, samples);
            history.records.push(rec);
        }
        if samples < target_samples {
            let start = learners[id].clock;
            let dur = block_duration(&mut learners[id], t, step_s, cfg);
            queue.push(VirtualTime(start + dur), Block { learner: id, start });
        }
    }
    if history.records.is_empty() || history.records.last().expect("nonempty").samples < samples {
        let epoch = samples as f64 / n as f64;
        let (comp, comm) = (learners[0].compute_s, learners[0].comm_s);
        let rec = evals.record(&mut learners[0].model, epoch, comp, comm, samples);
        history.records.push(rec);
    }
    history.staleness = StalenessStats::from_observations(&staleness_obs);
    history.final_params = Some(learners[0].model.param_vector());
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_data::cifar_like::{generate, CifarLikeConfig};
    use sasgd_nn::models;
    use sasgd_simnet::JitterModel;
    use sasgd_tensor::SeedRng;

    #[test]
    fn learns_tiny_cifar_with_two_learners() {
        let (train, test) = generate(&CifarLikeConfig::tiny(80, 40, 3));
        let mut cfg = TrainConfig::new(8, 8, 0.02, 42);
        cfg.jitter = JitterModel::none();
        let mut factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = run(&mut factory, &train, &test, &cfg, 2, 2, None, 0.9);
        assert!(h.final_test_acc() > 0.5, "acc {}", h.final_test_acc());
    }

    #[test]
    fn center_tracks_learners() {
        // With α = 1 and p = 1 the center equals the learner after every
        // exchange, so EAMSGD degenerates to momentum SGD — and should
        // still learn.
        let (train, test) = generate(&CifarLikeConfig::tiny(60, 20, 2));
        let mut cfg = TrainConfig::new(6, 8, 0.02, 3);
        cfg.jitter = JitterModel::none();
        let mut factory = || models::tiny_cnn(2, &mut SeedRng::new(9));
        let h = run(&mut factory, &train, &test, &cfg, 1, 1, Some(1.0), 0.9);
        assert!(h.final_test_acc() > 0.5, "acc {}", h.final_test_acc());
    }

    #[test]
    #[should_panic(expected = "momentum must be")]
    fn bad_momentum_rejected() {
        let (train, test) = generate(&CifarLikeConfig::tiny(16, 8, 2));
        let cfg = TrainConfig::new(1, 8, 0.02, 3);
        let mut factory = || models::tiny_cnn(2, &mut SeedRng::new(9));
        run(&mut factory, &train, &test, &cfg, 1, 1, None, 1.5);
    }
}

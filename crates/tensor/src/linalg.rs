//! Matrix kernels: the workhorses behind the fully connected and
//! (via im2col) convolutional layers.
//!
//! Each kernel has a sequential path and a Rayon-parallel path
//! (`matmul_par`, …) that splits work over output rows; the parallel path is
//! what stands in for the SIMD parallelism of one GPU learner in the paper's
//! testbed. Both paths produce identical results (same per-row reduction
//! order), which the tests check.

use rayon::prelude::*;

use crate::tensor::Tensor;

/// Rows at or above this count use the parallel path in the `_auto` kernels.
const PAR_THRESHOLD: usize = 64;

fn mm_row(out_row: &mut [f32], a_row: &[f32], b: &Tensor, k: usize, n: usize) {
    let bd = b.as_slice();
    out_row.iter_mut().for_each(|x| *x = 0.0);
    for (l, &av) in a_row.iter().enumerate().take(k) {
        if av == 0.0 {
            continue;
        }
        let brow = &bd[l * n..(l + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(brow) {
            *o += av * bv;
        }
    }
}

/// `C = A · B` for `A: [m,k]`, `B: [k,n]`, sequential.
///
/// # Panics
/// Panics if inner dimensions disagree or inputs are not matrices.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.as_slice();
    for i in 0..m {
        let (lo, hi) = (i * n, (i + 1) * n);
        mm_row(
            &mut out.as_mut_slice()[lo..hi],
            &ad[i * k..(i + 1) * k],
            b,
            k,
            n,
        );
    }
    out
}

/// `C = A · B`, rows of `A` distributed over the Rayon pool.
pub fn matmul_par(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.as_slice();
    out.as_mut_slice()
        .par_chunks_mut(n)
        .enumerate()
        .for_each(|(i, row)| mm_row(row, &ad[i * k..(i + 1) * k], b, k, n));
    out
}

/// `C = A · B` choosing the parallel path for large outputs.
pub fn matmul_auto(a: &Tensor, b: &Tensor) -> Tensor {
    if a.dims()[0] >= PAR_THRESHOLD {
        matmul_par(a, b)
    } else {
        matmul(a, b)
    }
}

/// `C = Aᵀ · B` for `A: [k,m]`, `B: [k,n]` without materializing `Aᵀ`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_tn inner dims {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let od = out.as_mut_slice();
    for l in 0..k {
        let arow = &ad[l * m..(l + 1) * m];
        let brow = &bd[l * n..(l + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// `C = A · Bᵀ` for `A: [m,k]`, `B: [n,k]` without materializing `Bᵀ`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nt inner dims {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let od = out.as_mut_slice();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut od[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            *o = dot(arow, brow);
        }
    }
    out
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y[j] += sum_i m[i][j]` — column sums accumulated into `y` (bias grads).
pub fn col_sums_into(m: &Tensor, y: &mut [f32]) {
    let (rows, cols) = (m.dims()[0], m.dims()[1]);
    assert_eq!(y.len(), cols, "col_sums_into width mismatch");
    let md = m.as_slice();
    for r in 0..rows {
        for (yj, &v) in y.iter_mut().zip(&md[r * cols..(r + 1) * cols]) {
            *yj += v;
        }
    }
}

/// Add a bias row vector to every row of a matrix in place.
pub fn add_bias_rows(m: &mut Tensor, bias: &[f32]) {
    let cols = m.dims()[1];
    assert_eq!(bias.len(), cols, "bias width mismatch");
    for row in m.as_mut_slice().chunks_mut(cols) {
        for (x, &b) in row.iter_mut().zip(bias) {
            *x += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedRng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for l in 0..k {
                    s += a.as_slice()[i * k + l] * b.as_slice()[l * n + j];
                }
                c.as_mut_slice()[i * n + j] = s;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let mut r = SeedRng::new(1);
        let a = r.normal_tensor(&[7, 5], 1.0);
        let b = r.normal_tensor(&[5, 9], 1.0);
        assert!(matmul(&a, &b).allclose(&naive(&a, &b), 1e-4));
    }

    #[test]
    fn parallel_equals_sequential_bitwise() {
        let mut r = SeedRng::new(2);
        let a = r.normal_tensor(&[130, 33], 1.0);
        let b = r.normal_tensor(&[33, 21], 1.0);
        let s = matmul(&a, &b);
        let p = matmul_par(&a, &b);
        assert_eq!(
            s.as_slice(),
            p.as_slice(),
            "parallel path must be bit-identical"
        );
        assert_eq!(matmul_auto(&a, &b).as_slice(), s.as_slice());
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let mut r = SeedRng::new(3);
        let a = r.normal_tensor(&[6, 4], 1.0);
        let b = r.normal_tensor(&[6, 5], 1.0);
        // A^T B where A:[6,4] -> At:[4,6]
        let mut at = Tensor::zeros(&[4, 6]);
        for i in 0..6 {
            for j in 0..4 {
                at.as_mut_slice()[j * 6 + i] = a.as_slice()[i * 4 + j];
            }
        }
        assert!(matmul_tn(&a, &b).allclose(&naive(&at, &b), 1e-4));

        let c = r.normal_tensor(&[3, 4], 1.0);
        let d = r.normal_tensor(&[7, 4], 1.0);
        let mut dt = Tensor::zeros(&[4, 7]);
        for i in 0..7 {
            for j in 0..4 {
                dt.as_mut_slice()[j * 7 + i] = d.as_slice()[i * 4 + j];
            }
        }
        assert!(matmul_nt(&c, &d).allclose(&naive(&c, &dt), 1e-4));
    }

    #[test]
    fn identity_is_neutral() {
        let mut r = SeedRng::new(4);
        let a = r.normal_tensor(&[5, 5], 1.0);
        assert!(matmul(&a, &Tensor::eye(5)).allclose(&a, 1e-6));
        assert!(matmul(&Tensor::eye(5), &a).allclose(&a, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn dimension_mismatch_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn bias_and_col_sums() {
        let mut m = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        add_bias_rows(&mut m, &[10., 20.]);
        assert_eq!(m.as_slice(), &[11., 22., 13., 24.]);
        let mut sums = vec![0.0; 2];
        col_sums_into(&m, &mut sums);
        assert_eq!(sums, vec![24., 46.]);
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }
}

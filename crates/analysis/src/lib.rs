//! # sasgd-analysis
//!
//! Repo-invariant static analysis and schedule-exploration race checking
//! for the SASGD workspace. Two legs, one verdict:
//!
//! 1. **Lint pass** ([`lints`], [`scan`]) — a hand-rolled lexer
//!    ([`lexer`]; the workspace vendors no `syn`) drives six repo-specific
//!    lints that encode the invariants the paper reproduction depends on:
//!    deterministic iteration (`map-iter`), audited unsafety (`unsafe`),
//!    wall-clock containment (`wall-clock`), structured concurrency
//!    (`raw-spawn`), allocation-free hot paths (`hot-alloc`), and explicit
//!    float↔int conversions in gradient math (`float-cast`). Suppression
//!    is per-site: `// lint:allow(<id>): <justification>`.
//!
//! 2. **Race checker** ([`schedule`]) — runs the `sasgd-comm` collectives
//!    and the parameter server under exhaustively permuted (p ≤ 4) and
//!    seeded-random (p = 8) delay-injection schedules, asserting bitwise
//!    result invariance, deadlock freedom (watchdog + held-resource
//!    report), and lost-update freedom on the PS path — including the
//!    fault-tolerant allreduce (fault-free invariance against the plain
//!    tree, dead-rank eviction agreement) and the epoch-versioned PS
//!    snapshot (no torn cross-shard cuts under concurrent pushes).
//!
//! 3. **Model checker** ([`model`], [`vclock`], [`dpor`]) — a fourth
//!    `Transport` impl routes every operation through a cooperative
//!    scheduler that owns all nondeterminism, and a sleep-set DPOR
//!    explorer enumerates **every inequivalent interleaving** of the
//!    scenario corpus at p ≤ 4 (seeded bounded search at p = 8). Races
//!    and lost updates are happens-before violations on vector clocks;
//!    deadlocks are wait-for-graph cycles with the exact blocked-op cycle
//!    in the report; every finding carries a replayable decision-sequence
//!    witness. Opt-in via [`run_all_with_model`] (`repro analyze
//!    --model`).
//!
//! All legs self-check against deliberate failures (a bad-fixture lint
//! corpus; an arrival-order reduce, a PS lost update, and a recv cycle)
//! so a silently dead analyzer cannot go green. Entry point: [`run_all`],
//! surfaced as `repro analyze` in `sasgd-bench` and as a CI gate.

pub mod dpor;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod report;
pub mod scan;
pub mod schedule;
pub mod vclock;

use report::{Analysis, ModelReport};
use scan::{fixtures_dir, lint_fixture_corpus, lint_repo, repo_root};
use schedule::{exhaustive_schedules, scenario_bad_reduce, scenario_deadlock};

/// Run the lint leg only (real tree + fixture self-check).
pub fn run_lints() -> (usize, Vec<lints::Violation>, usize, usize) {
    let run = lint_repo(&repo_root());
    let (fixture_files, fixture_violations) = lint_fixture_corpus(&fixtures_dir());
    (
        run.files_scanned,
        run.violations,
        fixture_files,
        fixture_violations.len(),
    )
}

/// Run the schedule-exploration leg only (production sweep + self-checks).
pub fn run_schedule_checks() -> (Vec<schedule::ScenarioResult>, bool, bool) {
    let scenarios = schedule::run_production_sweep();
    let bad = scenario_bad_reduce(3, &exhaustive_schedules(3));
    let bad_diverged = bad.distinct_results > 1;
    let dead = scenario_deadlock(2);
    let deadlock_detected = dead.deadlocks > 0
        && dead
            .deadlock_reports
            .iter()
            .any(|r| r.contains("blocked on"));
    (scenarios, bad_diverged, deadlock_detected)
}

/// Run both legs and assemble the full [`Analysis`].
pub fn run_all() -> Analysis {
    let (files_scanned, violations, fixture_files, fixture_violations) = run_lints();
    let (scenarios, bad_fixture_diverged, deadlock_detected) = run_schedule_checks();
    Analysis {
        files_scanned,
        violations,
        fixture_violations,
        fixture_files,
        scenarios,
        bad_fixture_diverged,
        deadlock_detected,
        model: None,
    }
}

/// Run the model-checker leg only: the DPOR sweep over the scenario
/// corpus plus the implanted-bug self-check.
pub fn run_model_checks() -> ModelReport {
    ModelReport {
        scenarios: dpor::run_model_sweep(),
        self_check: dpor::model_self_checks(),
    }
}

/// Run all three legs (`repro analyze --model`).
pub fn run_all_with_model() -> Analysis {
    let mut a = run_all();
    a.model = Some(run_model_checks());
    a
}

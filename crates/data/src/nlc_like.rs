//! Synthetic NLC-F stand-in.
//!
//! The paper's second workload is an unreleased finance NLP corpus:
//! 2 500 sentences, 311 output labels, inputs pre-embedded with word2vec
//! (100-d). We reproduce the regime, not the text: a vocabulary of random
//! embedding vectors, per-class *keyword* embeddings, and sentences built
//! by planting a few (noisy) keywords of the target class among shared
//! noise words. Key properties preserved:
//!
//! * tiny dataset with a huge label space (many classes, few examples
//!   per class) — the setting where Downpour/EAMSGD collapse at p ≥ 8
//!   (Fig 10) while SASGD stays near the sequential accuracy;
//! * inputs are fixed-length sequences of dense embeddings feeding the
//!   Table II temporal-convolution network;
//! * minibatch size 1 is meaningful (the paper found it best for NLC-F).

use sasgd_tensor::SeedRng;

use crate::dataset::Dataset;

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct NlcLikeConfig {
    /// Training sentences (paper: 2 500).
    pub train: usize,
    /// Test sentences (the paper does not state the split; we default to
    /// a 20 % holdout of the same generator).
    pub test: usize,
    /// Output labels (paper: 311).
    pub classes: usize,
    /// Sentence length in tokens.
    pub seq_len: usize,
    /// Embedding dimension (paper: 100, from word2vec).
    pub embed: usize,
    /// Keywords planted per sentence.
    pub keywords: usize,
    /// Additive embedding noise; larger is harder.
    pub noise: f32,
    /// Generator seed.
    pub seed: u64,
}

impl Default for NlcLikeConfig {
    fn default() -> Self {
        NlcLikeConfig {
            train: 2_500,
            test: 500,
            classes: 311,
            seq_len: 20,
            embed: 100,
            keywords: 3,
            noise: 0.35,
            seed: 0x1cf,
        }
    }
}

impl NlcLikeConfig {
    /// CPU-scale configuration with fewer classes/sentences but the same
    /// geometry.
    pub fn scaled(train: usize, test: usize, classes: usize) -> Self {
        NlcLikeConfig {
            train,
            test,
            classes,
            ..Default::default()
        }
    }

    /// Tiny configuration for unit/integration tests.
    pub fn tiny(train: usize, test: usize, classes: usize) -> Self {
        NlcLikeConfig {
            train,
            test,
            classes,
            seq_len: 8,
            embed: 12,
            keywords: 2,
            noise: 0.2,
            seed: 99,
        }
    }
}

struct Vocab {
    /// `[classes][keywords][embed]` class-identifying embeddings.
    keywords: Vec<Vec<Vec<f32>>>,
    /// `[n_noise][embed]` shared filler embeddings.
    noise_words: Vec<Vec<f32>>,
}

fn make_vocab(cfg: &NlcLikeConfig, rng: &mut SeedRng) -> Vocab {
    let unit = |rng: &mut SeedRng| -> Vec<f32> {
        let v: Vec<f32> = (0..cfg.embed).map(|_| rng.normal()).collect();
        let n = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
        v.into_iter().map(|x| x / n).collect()
    };
    let keywords = (0..cfg.classes)
        .map(|_| (0..cfg.keywords.max(1)).map(|_| unit(rng)).collect())
        .collect();
    let n_noise = (cfg.classes * 2).max(50);
    let noise_words = (0..n_noise).map(|_| unit(rng)).collect();
    Vocab {
        keywords,
        noise_words,
    }
}

fn generate_split(cfg: &NlcLikeConfig, vocab: &Vocab, n: usize, rng: &mut SeedRng) -> Dataset {
    let stride = cfg.seq_len * cfg.embed;
    let mut x = Vec::with_capacity(n * stride);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % cfg.classes;
        // Choose keyword positions.
        let mut positions: Vec<usize> = (0..cfg.seq_len).collect();
        rng.shuffle(&mut positions);
        let kw_positions = &positions[..cfg.keywords.min(cfg.seq_len)];
        for t in 0..cfg.seq_len {
            let word: &[f32] = if let Some(k) = kw_positions.iter().position(|&p| p == t) {
                &vocab.keywords[class][k % vocab.keywords[class].len()]
            } else {
                &vocab.noise_words[rng.below(vocab.noise_words.len())]
            };
            for &w in word {
                x.push(w + cfg.noise * rng.normal());
            }
        }
        labels.push(class);
    }
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut xs = Vec::with_capacity(x.len());
    let mut ls = Vec::with_capacity(n);
    for &i in &order {
        xs.extend_from_slice(&x[i * stride..(i + 1) * stride]);
        ls.push(labels[i]);
    }
    Dataset::new(xs, ls, &[cfg.seq_len, cfg.embed], cfg.classes)
}

/// Generate the (train, test) pair, sharing a vocabulary.
pub fn generate(cfg: &NlcLikeConfig) -> (Dataset, Dataset) {
    assert!(cfg.classes >= 2, "need at least two classes");
    assert!(cfg.keywords >= 1, "need at least one keyword per class");
    assert!(
        cfg.seq_len >= cfg.keywords,
        "sentence shorter than keyword count"
    );
    let mut vrng = SeedRng::new(cfg.seed).split(0xABC);
    let vocab = make_vocab(cfg, &mut vrng);
    let mut train_rng = SeedRng::new(cfg.seed).split(1);
    let mut test_rng = SeedRng::new(cfg.seed).split(2);
    (
        generate_split(cfg, &vocab, cfg.train, &mut train_rng),
        generate_split(cfg, &vocab, cfg.test, &mut test_rng),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_geometry() {
        let cfg = NlcLikeConfig {
            train: 311,
            test: 311,
            ..Default::default()
        };
        let (train, test) = generate(&cfg);
        assert_eq!(train.sample_dims(), &[20, 100]);
        assert_eq!(train.classes(), 311);
        assert_eq!(train.len(), 311);
        assert_eq!(test.len(), 311);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = NlcLikeConfig::tiny(10, 4, 5);
        let (a, _) = generate(&cfg);
        let (b, _) = generate(&cfg);
        let (xa, ya) = a.batch(&[0, 5]);
        let (xb, yb) = b.batch(&[0, 5]);
        assert_eq!(xa.as_slice(), xb.as_slice());
        assert_eq!(ya, yb);
    }

    #[test]
    fn keyword_signal_is_recoverable() {
        // A max-over-words dot product with each class's first keyword
        // should identify the class far above chance.
        let cfg = NlcLikeConfig {
            noise: 0.1,
            ..NlcLikeConfig::tiny(40, 0, 4)
        };
        let (train, _) = generate(&cfg);
        let mut vrng = SeedRng::new(cfg.seed).split(0xABC);
        let vocab = make_vocab(&cfg, &mut vrng);
        let mut correct = 0usize;
        for i in 0..train.len() {
            let (x, y) = train.batch(&[i]);
            let xs = x.as_slice();
            let mut best = (f32::NEG_INFINITY, 0usize);
            for (cls, kws) in vocab.keywords.iter().enumerate() {
                let mut score = f32::NEG_INFINITY;
                for t in 0..cfg.seq_len {
                    let tok = &xs[t * cfg.embed..(t + 1) * cfg.embed];
                    for kw in kws {
                        let d: f32 = tok.iter().zip(kw).map(|(a, b)| a * b).sum();
                        score = score.max(d);
                    }
                }
                if score > best.0 {
                    best = (score, cls);
                }
            }
            if best.1 == y[0] {
                correct += 1;
            }
        }
        let acc = correct as f32 / train.len() as f32;
        assert!(acc > 0.7, "keyword matching accuracy only {acc}");
    }

    #[test]
    fn balanced_labels() {
        let cfg = NlcLikeConfig::tiny(20, 0, 4);
        let (train, _) = generate(&cfg);
        let mut counts = vec![0usize; 4];
        for i in 0..train.len() {
            counts[train.label(i)] += 1;
        }
        assert_eq!(counts, vec![5; 4]);
    }

    #[test]
    #[should_panic(expected = "sentence shorter")]
    fn rejects_too_many_keywords() {
        let cfg = NlcLikeConfig {
            keywords: 9,
            ..NlcLikeConfig::tiny(4, 0, 2)
        };
        generate(&cfg);
    }
}

//! # sasgd-tensor
//!
//! Dense `f32` tensor math underpinning the SASGD reproduction.
//!
//! The paper trains its models with Torch on K80 GPUs; this crate is the
//! from-scratch replacement: row-major dense tensors, the linear-algebra and
//! convolution kernels needed by the networks of Table I / Table II, and
//! seeded random initialization so every experiment is reproducible.
//!
//! Heavy kernels ([`linalg::matmul`], [`conv`], [`pool`]) have parallel
//! paths — the "GPU" inside one simulated learner — selected per call via
//! the `*_par` / `*_auto` entry points and enabled by the `parallel`
//! feature (they fall back to the serial kernels without it). Parallel
//! kernels split only across independent outputs, so they are **bitwise
//! identical** to the serial kernels at any thread count; size the pool
//! with [`parallel::configure_threads`].
//!
//! The `simd` feature adds a packed, register-blocked GEMM family
//! ([`pack`] / [`microkernel`] / [`tune`]) dispatched through
//! `linalg::gemm_*_ws`. It is **tolerance mode** — opt-in at runtime via
//! [`linalg::set_packed_gemm`], never bitwise-equal to the reference
//! kernels (see the [`linalg`] module docs for the fold-order contract).
//! `simd-nightly` additionally spells the microkernels with `std::simd`
//! on a nightly toolchain; the arithmetic is lane-identical either way.
//!
//! ## Example
//!
//! ```
//! use sasgd_tensor::{Tensor, linalg};
//! let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = linalg::matmul(&a, &b);
//! assert_eq!(c.as_slice(), a.as_slice());
//! ```

#![cfg_attr(feature = "simd-nightly", feature(portable_simd))]

pub mod conv;
pub mod linalg;
pub mod microkernel;
pub mod pack;
pub mod parallel;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod stats;
pub mod tensor;
pub mod tune;
pub mod workspace;

pub use rng::SeedRng;
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::{AlignedF32, Workspace};

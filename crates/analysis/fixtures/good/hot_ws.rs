// virtual-path: crates/tensor/src/fixture_hot_ok.rs
// GOOD: a hot-path function that draws scratch from the Workspace arena,
// with one justified O(ndims) metadata allocation.

// hot-path
pub fn conv_inner(ws: &mut Workspace, x: &[f32], dims: &[usize], out: &mut [f32]) {
    let scratch = ws.take_f32(x.len());
    let shape = dims.to_vec(); // lint:allow(hot-alloc): O(ndims) shape metadata, not O(m)
    let _ = shape;
    for (o, s) in out.iter_mut().zip(scratch.iter()) {
        *o = *s;
    }
    ws.give(scratch);
}

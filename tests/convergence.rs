//! End-to-end convergence tests: every algorithm learns at benign
//! settings, and the paper's qualitative claims hold at miniature scale.

use sasgd::core::algorithms::GammaP;
use sasgd::core::{train, Algorithm, TrainConfig};
use sasgd::data::cifar_like::{generate, CifarLikeConfig};
use sasgd::data::nlc_like::{self, NlcLikeConfig};
use sasgd::nn::models;
use sasgd::simnet::JitterModel;
use sasgd::tensor::SeedRng;

fn cifar() -> (sasgd::data::Dataset, sasgd::data::Dataset) {
    generate(&CifarLikeConfig::tiny(160, 64, 3))
}

fn cfg(epochs: usize, gamma: f32) -> TrainConfig {
    let mut c = TrainConfig::new(epochs, 8, gamma, 42);
    c.jitter = JitterModel::default();
    c
}

#[test]
fn every_algorithm_learns_at_small_p() {
    let (train_set, test_set) = cifar();
    let algos = [
        Algorithm::Sequential,
        Algorithm::Sasgd {
            p: 2,
            t: 2,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        Algorithm::Downpour {
            p: 2,
            t: 1,
            staleness_gamma: false,
        },
        Algorithm::Eamsgd {
            p: 2,
            t: 2,
            moving_rate: None,
            momentum: 0.5,
            staleness_gamma: false,
        },
        Algorithm::ModelAverageOnce { p: 2 },
    ];
    for algo in algos {
        let mut f = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = train(&mut f, &train_set, &test_set, &algo, &cfg(8, 0.04));
        assert!(
            h.final_test_acc() > 0.5,
            "{} only reached {:.2}",
            algo.label(),
            h.final_test_acc()
        );
    }
}

#[test]
fn sasgd_tolerates_more_learners_than_downpour() {
    // The Fig 9/10 claim at miniature scale: at p=8 and a coarse interval,
    // SASGD's synchronized aggregation keeps it learning while Downpour's
    // stale single-shard pushes destroy accuracy. Two scale requirements
    // make the effect visible: the shards must be non-IID (ByClass — each
    // learner sees ~one class, so async pushes thrash the server between
    // class solutions while SASGD's allreduce always averages all of
    // them), and each learner needs at least T minibatches per epoch so
    // SASGD actually aggregates every epoch rather than once per run
    // (640/8 samples at batch 8 = 10 steps/epoch = exactly T).
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(640, 128, 3));
    let mut c = cfg(8, 0.06);
    c.shard_strategy = sasgd::data::ShardStrategy::ByClass;
    let p = 8;
    let t = 10;
    let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(5));
    let sasgd = train(
        &mut f1,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p,
            t,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        &c,
    );
    let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(5));
    let downpour = train(
        &mut f2,
        &train_set,
        &test_set,
        &Algorithm::Downpour {
            p,
            t,
            staleness_gamma: false,
        },
        &c,
    );
    assert!(
        sasgd.final_test_acc() > downpour.final_test_acc() + 0.1,
        "SASGD {:.2} should clearly beat Downpour {:.2} at p={p}, T={t}",
        sasgd.final_test_acc(),
        downpour.final_test_acc()
    );
}

#[test]
fn interval_increases_sample_complexity() {
    // Theorem 4, empirically: same sample budget, larger T ⇒ no better
    // (usually worse) training accuracy.
    let (train_set, test_set) = cifar();
    let c = cfg(8, 0.05);
    let mut accs = Vec::new();
    for t in [1usize, 16] {
        let mut f = || models::tiny_cnn(3, &mut SeedRng::new(9));
        let h = train(
            &mut f,
            &train_set,
            &test_set,
            &Algorithm::Sasgd {
                p: 4,
                t,
                gamma_p: GammaP::OverP,
                compression: None,
            },
            &c,
        );
        accs.push(h.final_train_acc());
    }
    assert!(
        accs[1] <= accs[0] + 0.05,
        "T=16 train acc {:.2} should not beat T=1 {:.2} by a margin",
        accs[1],
        accs[0]
    );
}

#[test]
fn sasgd_comm_time_amortizes_with_t() {
    // The headline trade-off: bigger T, less communication per epoch.
    let (train_set, test_set) = cifar();
    let c = cfg(2, 0.05);
    let mut comm = Vec::new();
    for t in [1usize, 8] {
        let mut f = || models::tiny_cnn(3, &mut SeedRng::new(3));
        let h = train(
            &mut f,
            &train_set,
            &test_set,
            &Algorithm::Sasgd {
                p: 4,
                t,
                gamma_p: GammaP::OverP,
                compression: None,
            },
            &c,
        );
        comm.push(h.records.last().expect("records").comm_seconds);
    }
    assert!(
        comm[1] < comm[0] / 3.0,
        "T=8 comm {:.4}s should be far below T=1 {:.4}s",
        comm[1],
        comm[0]
    );
}

#[test]
fn nlc_workload_trains_with_sasgd() {
    let (train_set, test_set) = nlc_like::generate(&NlcLikeConfig::tiny(160, 60, 5));
    let mut c = TrainConfig::new(10, 2, 0.05, 1);
    c.jitter = JitterModel::none();
    let mut f = || models::nlc_net_custom(8, 12, 24, 64, 64, 5, &mut SeedRng::new(2));
    let h = train(
        &mut f,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 4,
            t: 5,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        &c,
    );
    assert!(
        h.final_test_acc() > 0.4,
        "NLC-like acc {:.2}",
        h.final_test_acc()
    );
}

#[test]
fn one_shot_averaging_underperforms_sasgd() {
    // §III: averaging once at the end "results in very poor training and
    // test accuracies" relative to per-interval aggregation. The effect
    // needs shard-local solutions that disagree, so shard a many-class
    // dataset by label (ByClass): each of the 8 learners converges to a
    // one-or-two-class specialist, and averaging the specialists once at
    // the end yields mush, while SASGD's per-interval aggregation keeps
    // one consensus model that learns every class.
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(200, 80, 10));
    let mut c = cfg(16, 0.05);
    c.shard_strategy = sasgd::data::ShardStrategy::ByClass;
    let p = 8;
    let mut f1 = || models::tiny_cnn(10, &mut SeedRng::new(4));
    let avg = train(
        &mut f1,
        &train_set,
        &test_set,
        &Algorithm::ModelAverageOnce { p },
        &c,
    );
    let mut f2 = || models::tiny_cnn(10, &mut SeedRng::new(4));
    let sasgd = train(
        &mut f2,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p,
            t: 2,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        &c,
    );
    assert!(
        sasgd.final_test_acc() > avg.final_test_acc(),
        "SASGD {:.2} vs one-shot averaging {:.2}",
        sasgd.final_test_acc(),
        avg.final_test_acc()
    );
}

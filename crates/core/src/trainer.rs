//! The distributed trainer: shared machinery plus the public [`train`]
//! entry point.
//!
//! All algorithms run *real* gradient math on model replicas; what is
//! simulated is the platform — per-minibatch compute times, aggregation
//! costs and learner jitter come from the `sasgd-simnet` cost model and
//! advance deterministic virtual clocks. Asynchronous algorithms are
//! executed event-driven in virtual-time order, so gradient staleness
//! emerges from the same speed variations a real cluster has, while runs
//! stay bit-reproducible under a seed.

use sasgd_data::{Dataset, ShardStrategy};
use sasgd_nn::{Ctx, Model};
use sasgd_simnet::{CostModel, JitterModel};
use sasgd_tensor::{SeedRng, Tensor, Workspace};

use crate::algorithms::{self, Algorithm};
use crate::history::{EpochRecord, History};
use crate::schedule::LrSchedule;

/// Everything a training run needs besides the data and the algorithm.
#[derive(Clone)]
pub struct TrainConfig {
    /// Collective epochs: total samples processed = `epochs × |train|`.
    pub epochs: usize,
    /// Minibatch size `M`.
    pub batch_size: usize,
    /// Base local learning rate `γ`.
    pub gamma: f32,
    /// How γ evolves over epochs (the paper uses [`LrSchedule::Constant`]).
    pub schedule: LrSchedule,
    /// Master seed (learner streams are split from it).
    pub seed: u64,
    /// Platform model for virtual-time accounting.
    pub cost: CostModel,
    /// Learner speed noise (drives staleness and stragglers).
    pub jitter: JitterModel,
    /// Cap on evaluation-set sizes (0 = evaluate on everything).
    pub eval_cap: usize,
    /// How training data is partitioned across learners. The default,
    /// [`ShardStrategy::Contiguous`], is IID for the shuffled synthetic
    /// datasets; [`ShardStrategy::ByClass`] builds the pathological
    /// non-IID partition where one-shot averaging collapses.
    pub shard_strategy: ShardStrategy,
    /// Execution-cadence override: `None` runs each strategy at its
    /// natural cadence (lockstep for the bulk-synchronous algorithms,
    /// event-driven for the asynchronous ones); `Some` forces one. The
    /// simulated backend executes every strategy under either value.
    pub cadence: Option<crate::engine::Cadence>,
}

impl TrainConfig {
    /// γ at a (fractional) collective epoch, per the schedule.
    pub fn gamma_at(&self, epoch: f64) -> f32 {
        self.schedule.at(self.gamma, epoch)
    }

    /// A convenient configuration for experiments: paper-testbed cost
    /// model, default jitter, evaluation capped at 2 000 samples.
    pub fn new(epochs: usize, batch_size: usize, gamma: f32, seed: u64) -> Self {
        TrainConfig {
            epochs,
            batch_size,
            gamma,
            schedule: LrSchedule::Constant,
            seed,
            cost: CostModel::paper_testbed(),
            jitter: JitterModel::default(),
            eval_cap: 2_000,
            shard_strategy: ShardStrategy::Contiguous,
            cadence: None,
        }
    }
}

/// Run `algo` on `(train_set, test_set)`, building learner replicas with
/// `factory` (which must return identically initialized models — close
/// over a fixed seed).
///
/// Returns the per-epoch [`History`] recorded from learner 0's
/// perspective, as the paper does ("we collect accuracy numbers from one
/// learner after it has made a complete pass of the input data").
pub fn train(
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    algo: &Algorithm,
    cfg: &TrainConfig,
) -> History {
    assert!(cfg.epochs > 0, "need at least one epoch");
    assert!(cfg.batch_size > 0, "need a positive minibatch size");
    assert!(!train_set.is_empty(), "empty training set");
    match *algo {
        Algorithm::Sequential => algorithms::sequential::run(factory, train_set, test_set, cfg),
        Algorithm::Sasgd {
            p,
            t,
            gamma_p,
            compression,
        } => algorithms::sasgd::run(
            factory,
            train_set,
            test_set,
            cfg,
            p,
            t,
            gamma_p,
            compression,
        ),
        Algorithm::HierarchicalSasgd {
            groups,
            per_group,
            t_local,
            t_global,
            gamma_p,
        } => algorithms::hierarchical::run(
            factory, train_set, test_set, cfg, groups, per_group, t_local, t_global, gamma_p,
        ),
        Algorithm::Downpour {
            p,
            t,
            staleness_gamma,
        } => algorithms::downpour::run(factory, train_set, test_set, cfg, p, t, staleness_gamma),
        Algorithm::Eamsgd {
            p,
            t,
            moving_rate,
            momentum,
            staleness_gamma,
        } => algorithms::eamsgd::run(
            factory,
            train_set,
            test_set,
            cfg,
            p,
            t,
            moving_rate,
            momentum,
            staleness_gamma,
        ),
        Algorithm::LocalSgd { p, schedule } => {
            algorithms::local_sgd::run(factory, train_set, test_set, cfg, p, schedule)
        }
        Algorithm::DelayedAvg { p, t } => {
            algorithms::dasgd::run(factory, train_set, test_set, cfg, p, t)
        }
        Algorithm::ModelAverageOnce { p } => {
            algorithms::averaging::run(factory, train_set, test_set, cfg, p)
        }
    }
}

// ---------------------------------------------------------------------------
// Shared internals used by the algorithm implementations.
// ---------------------------------------------------------------------------

/// Pre-batched evaluation sets (optionally capped).
pub(crate) struct EvalSets {
    train_x: Vec<Tensor>,
    train_y: Vec<Vec<usize>>,
    test_x: Vec<Tensor>,
    test_y: Vec<Vec<usize>>,
}

impl EvalSets {
    pub(crate) fn prepare(train: &Dataset, test: &Dataset, cap: usize) -> Self {
        let take = |d: &Dataset| -> (Vec<Tensor>, Vec<Vec<usize>>) {
            let n = if cap == 0 { d.len() } else { d.len().min(cap) };
            if n == 0 {
                return (Vec::new(), Vec::new());
            }
            let idx: Vec<usize> = (0..n).collect();
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for chunk in idx.chunks(64) {
                let (x, y) = d.batch(chunk);
                xs.push(x);
                ys.push(y);
            }
            (xs, ys)
        };
        let (train_x, train_y) = take(train);
        let (test_x, test_y) = take(test);
        EvalSets {
            train_x,
            train_y,
            test_x,
            test_y,
        }
    }

    /// Evaluate `model` and assemble a record, including a large-batch
    /// gradient-norm estimate (the empirical counterpart of the theory's
    /// average gradient norm; measured on up to two evaluation batches
    /// in deterministic measurement mode — dropout disabled).
    pub(crate) fn record(
        &self,
        model: &mut Model,
        epoch: f64,
        compute_seconds: f64,
        comm_seconds: f64,
        samples: u64,
    ) -> EpochRecord {
        let (train_loss, train_acc) = model.evaluate(&self.train_x, &self.train_y);
        let (test_loss, test_acc) = model.evaluate(&self.test_x, &self.test_y);
        let grad_norm = self.grad_norm_estimate(model);
        EpochRecord {
            epoch,
            train_loss,
            train_acc,
            test_loss,
            test_acc,
            compute_seconds,
            comm_seconds,
            samples,
            grad_norm,
        }
    }

    fn grad_norm_estimate(&self, model: &mut Model) -> f32 {
        let mut grad = vec![0.0f32; model.param_len()];
        let mut batches = 0usize;
        for (x, y) in self.train_x.iter().zip(&self.train_y).take(2) {
            model.zero_grads();
            // Measurement mode: activations are cached so backward works,
            // but dropout stays off — this estimates the norm of the full
            // network's gradient, not of one sampled thinned network, and
            // repeated calls on the same parameters agree exactly.
            let mut ctx = Ctx::measure();
            model.forward_loss(x, y, &mut ctx);
            model.backward(&mut ctx);
            let g = model.grad_vector();
            for (a, &b) in grad.iter_mut().zip(&g) {
                *a += b;
            }
            batches += 1;
        }
        model.zero_grads();
        if batches == 0 {
            return 0.0;
        }
        let inv = 1.0 / batches as f32;
        grad.iter()
            .map(|v| (v * inv) * (v * inv))
            .sum::<f32>()
            .sqrt()
    }
}

/// One learner replica with its deterministic streams and virtual clocks.
pub(crate) struct Learner {
    pub(crate) model: Model,
    /// Batch-order and dropout stream.
    pub(crate) rng: SeedRng,
    /// Jitter stream (separate so changing jitter never changes the math).
    pub(crate) jrng: SeedRng,
    /// Persistent speed factor.
    pub(crate) speed: f64,
    /// Virtual clock (seconds).
    pub(crate) clock: f64,
    /// Accumulated compute seconds.
    pub(crate) compute_s: f64,
    /// Accumulated communication (incl. barrier wait) seconds.
    pub(crate) comm_s: f64,
    /// Gradient accumulator `gs` of Algorithm 1.
    pub(crate) gs: Vec<f32>,
    /// Scratch-buffer arena reused across this learner's steps, so the
    /// steady-state hot path stays off the allocator.
    pub(crate) ws: Workspace,
}

impl Learner {
    pub(crate) fn new(id: usize, model: Model, cfg: &TrainConfig) -> Self {
        let m = model.param_len();
        let root = SeedRng::new(cfg.seed);
        Learner {
            model,
            rng: root.split(0x100 + id as u64),
            jrng: root.split(0x200 + id as u64),
            speed: cfg.jitter.learner_factor(id, cfg.seed),
            clock: 0.0,
            compute_s: 0.0,
            comm_s: 0.0,
            gs: vec![0.0; m],
            ws: Workspace::new(),
        }
    }

    /// Draw this learner's next per-minibatch jitter factor.
    pub(crate) fn draw_jitter(&mut self, jm: &JitterModel) -> f64 {
        jm.minibatch_factor(&mut self.jrng)
    }

    /// Forward + backward on one minibatch; returns `(gradient, loss)`
    /// without touching parameters, `gs`, or the clock.
    pub(crate) fn compute_gradient(&mut self, data: &Dataset, idx: &[usize]) -> (Vec<f32>, f32) {
        let (x, y) = data.batch(idx);
        let mut ctx = Ctx::train(self.rng.split(0xD5)); // fresh dropout stream per call
                                                        // Advance the dropout base stream so successive batches differ.
        let _ = self.rng.uniform();
        // Thread the learner's persistent arena through this step's context
        // so per-batch scratch buffers are reused instead of reallocated.
        ctx.ws = std::mem::take(&mut self.ws);
        self.model.zero_grads();
        let out = self.model.forward_loss(&x, &y, &mut ctx);
        self.model.backward(&mut ctx);
        self.ws = std::mem::take(&mut ctx.ws);
        (self.model.grad_vector(), out.loss)
    }

    /// Process one minibatch: forward, backward, accumulate into `gs`,
    /// apply the local step `x ← x − γ·g`, and advance the clock by
    /// `step_seconds × speed × jitter`. Returns the minibatch loss.
    pub(crate) fn local_step(
        &mut self,
        data: &Dataset,
        idx: &[usize],
        gamma: f32,
        step_seconds: f64,
        jitter: f64,
    ) -> f32 {
        let (g, loss) = self.compute_gradient(data, idx);
        for (a, &b) in self.gs.iter_mut().zip(&g) {
            *a += b;
        }
        if gamma != 0.0 {
            let mut params = self.model.param_vector();
            for (p, &gv) in params.iter_mut().zip(&g) {
                *p -= gamma * gv;
            }
            self.model.write_params(&params);
        }
        let dt = step_seconds * self.speed * jitter;
        self.clock += dt;
        self.compute_s += dt;
        loss
    }

    /// Advance the clock through a communication phase.
    pub(crate) fn charge_comm(&mut self, seconds: f64) {
        self.clock += seconds;
        self.comm_s += seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_data::cifar_like::{generate, CifarLikeConfig};
    use sasgd_nn::models;

    #[test]
    fn eval_sets_cap_applies() {
        let (train, test) = generate(&CifarLikeConfig::tiny(50, 30, 3));
        let ev = EvalSets::prepare(&train, &test, 10);
        assert_eq!(ev.train_y.iter().map(Vec::len).sum::<usize>(), 10);
        assert_eq!(ev.test_y.iter().map(Vec::len).sum::<usize>(), 10);
        let ev_all = EvalSets::prepare(&train, &test, 0);
        assert_eq!(ev_all.train_y.iter().map(Vec::len).sum::<usize>(), 50);
    }

    #[test]
    fn record_reports_consistent_fields() {
        let (train, test) = generate(&CifarLikeConfig::tiny(20, 10, 3));
        let ev = EvalSets::prepare(&train, &test, 0);
        let mut model = models::tiny_cnn(3, &mut SeedRng::new(0));
        let r = ev.record(&mut model, 2.0, 1.5, 0.5, 40);
        assert_eq!(r.epoch, 2.0);
        assert!(r.train_acc >= 0.0 && r.train_acc <= 1.0);
        assert!(r.test_loss > 0.0);
        assert_eq!(r.samples, 40);
    }

    #[test]
    fn grad_norm_estimate_is_invariant_across_calls() {
        // The estimate must be a pure function of the parameters: it runs
        // in measurement mode (dropout off), so repeating it on the same
        // model — even one whose stack contains Dropout layers — yields
        // bitwise-identical norms and leaves no gradient state behind.
        use sasgd_nn::layers::{Dropout, Flatten, Linear, Relu};
        let (train, test) = generate(&CifarLikeConfig::tiny(16, 8, 3));
        let ev = EvalSets::prepare(&train, &test, 0);
        let mut rng = SeedRng::new(11);
        let mut model = Model::new(
            vec![
                Box::new(Flatten::new()),
                Box::new(Linear::new(3 * 8 * 8, 16, &mut rng)),
                Box::new(Relu::new()),
                Box::new(Dropout::new(0.5)),
                Box::new(Linear::new(16, 3, &mut rng)),
            ],
            &[3, 8, 8],
        );
        let first = ev.grad_norm_estimate(&mut model);
        let second = ev.grad_norm_estimate(&mut model);
        assert!(first > 0.0, "fresh model must have a nonzero gradient");
        assert_eq!(first, second, "estimate must not sample dropout noise");
        let r1 = ev.record(&mut model, 0.0, 0.0, 0.0, 0);
        let r2 = ev.record(&mut model, 0.0, 0.0, 0.0, 0);
        assert_eq!(r1.grad_norm, r2.grad_norm);
        assert_eq!(r1.grad_norm, first);
    }
}

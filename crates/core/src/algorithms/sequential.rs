//! Sequential SGD — the single-learner baseline every figure compares to.

use sasgd_data::Dataset;
use sasgd_nn::Model;

use crate::history::History;
use crate::trainer::{EvalSets, Learner, TrainConfig};

/// Plain minibatch SGD on one learner.
pub(crate) fn run(
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
) -> History {
    let model = factory();
    let macs = model.macs_per_sample();
    let mut learner = Learner::new(0, model, cfg);
    let evals = EvalSets::prepare(train_set, test_set, cfg.eval_cap);
    let shard = &train_set.shards(1)[0];
    let step_s = cfg.cost.minibatch_compute(macs, cfg.batch_size, 1);
    let mut history = History::new("SGD", 1, 1);
    let mut samples = 0u64;
    for epoch in 1..=cfg.epochs {
        let batches: Vec<Vec<usize>> = shard.epoch_iter(cfg.batch_size, &mut learner.rng).collect();
        let steps = batches.len().max(1);
        for (step, idx) in batches.iter().enumerate() {
            let epoch_f = (epoch - 1) as f64 + step as f64 / steps as f64;
            let gamma_now = cfg.gamma_at(epoch_f);
            samples += idx.len() as u64;
            let j = learner.draw_jitter(&cfg.jitter);
            learner.local_step(train_set, idx, gamma_now, step_s, j);
            // Sequential SGD keeps no separate accumulator.
            learner.gs.iter_mut().for_each(|g| *g = 0.0);
        }
        learner.clock += cfg.cost.epoch_overhead;
        let rec = evals.record(
            &mut learner.model,
            epoch as f64,
            learner.compute_s,
            learner.comm_s,
            samples,
        );
        history.records.push(rec);
    }
    history.final_params = Some(learner.model.param_vector());
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_data::cifar_like::{generate, CifarLikeConfig};
    use sasgd_nn::models;
    use sasgd_simnet::JitterModel;
    use sasgd_tensor::SeedRng;

    #[test]
    fn learns_tiny_cifar() {
        let (train, test) = generate(&CifarLikeConfig::tiny(120, 60, 3));
        let mut cfg = TrainConfig::new(8, 8, 0.05, 42);
        cfg.jitter = JitterModel::none();
        let mut factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = run(&mut factory, &train, &test, &cfg);
        assert_eq!(h.records.len(), 8);
        let first = h.records[0].train_loss;
        let last = h.records.last().expect("records").train_loss;
        assert!(last < first, "loss should fall: {first} -> {last}");
        assert!(h.final_test_acc() > 0.5, "acc {}", h.final_test_acc());
        // No communication for one learner.
        assert_eq!(h.records.last().expect("records").comm_seconds, 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let (train, test) = generate(&CifarLikeConfig::tiny(40, 20, 3));
        let cfg = TrainConfig::new(2, 8, 0.05, 11);
        let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(5));
        let h1 = run(&mut f1, &train, &test, &cfg);
        let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(5));
        let h2 = run(&mut f2, &train, &test, &cfg);
        assert_eq!(
            h1.records.last().expect("r").train_loss,
            h2.records.last().expect("r").train_loss
        );
    }
}

//! Ablation bench: tree vs ring allreduce over real threads
//! (DESIGN.md §5, item 1). The paper assumes the `O(m log p)` tree; ring
//! moves `2m(p−1)/p` per rank and wins for large models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sasgd_comm::collectives::{allreduce_ring, allreduce_tree};
use sasgd_comm::world::CommWorld;
use std::thread;

fn run_allreduce(p: usize, m: usize, ring: bool) {
    let mut world = CommWorld::new(p);
    let comms = world.communicators();
    thread::scope(|s| {
        for mut c in comms {
            s.spawn(move || {
                let mut v = vec![c.rank() as f32; m];
                if ring {
                    allreduce_ring(&mut c, &mut v).expect("ring allreduce");
                } else {
                    allreduce_tree(&mut c, &mut v).expect("tree allreduce");
                }
                assert!(v[0] >= 0.0);
            });
        }
    });
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce");
    g.sample_size(10);
    for &p in &[2usize, 4, 8] {
        for &m in &[65_536usize, 506_378] {
            let id = format!("p{p}_m{m}");
            g.bench_with_input(BenchmarkId::new("tree", &id), &(p, m), |b, &(p, m)| {
                b.iter(|| run_allreduce(p, m, false))
            });
            g.bench_with_input(BenchmarkId::new("ring", &id), &(p, m), |b, &(p, m)| {
                b.iter(|| run_allreduce(p, m, true))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_allreduce);
criterion_main!(benches);

//! Max-pooling layer (NCHW).

use sasgd_tensor::pool::{maxpool2d_backward_into, maxpool2d_forward_into, Pool2dSpec};
use sasgd_tensor::Tensor;

use crate::layer::{Ctx, Layer};

/// Spatial max-pool; the paper uses 2×2 windows with stride 2 throughout.
pub struct MaxPool2d {
    spec: Pool2dSpec,
    /// Persistent argmax buffer, refilled each training forward.
    cached_argmax: Vec<u32>,
    argmax_valid: bool,
    cached_in_dims: Vec<usize>,
}

impl MaxPool2d {
    /// Square window with stride = window.
    pub fn new(window: usize) -> Self {
        MaxPool2d {
            spec: Pool2dSpec::square(window),
            cached_argmax: Vec::new(),
            argmax_valid: false,
            cached_in_dims: Vec::new(),
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "MaxPool2d"
    }

    fn forward(&mut self, input: Tensor, ctx: &mut Ctx) -> Tensor {
        let [n, c] = [input.dims()[0], input.dims()[1]];
        let (oh, ow) = self.spec.out_hw(input.dims()[2], input.dims()[3]);
        let mut output = Tensor::zeros_in(&[n, c, oh, ow], &mut ctx.ws);
        self.cached_argmax.resize(n * c * oh * ow, 0);
        maxpool2d_forward_into(
            &input,
            &self.spec,
            output.as_mut_slice(),
            &mut self.cached_argmax,
        );
        if ctx.training {
            self.argmax_valid = true;
            self.cached_in_dims = input.dims().to_vec();
        }
        ctx.ws.recycle(input);
        output
    }

    fn backward(&mut self, grad_out: Tensor, ctx: &mut Ctx) -> Tensor {
        assert!(self.argmax_valid, "backward without forward");
        self.argmax_valid = false;
        let mut din = Tensor::zeros_in(&self.cached_in_dims, &mut ctx.ws);
        maxpool2d_backward_into(&grad_out, &self.cached_argmax, din.as_mut_slice());
        ctx.ws.recycle(grad_out);
        din
    }

    fn out_shape(&self, in_dims: &[usize]) -> Vec<usize> {
        assert_eq!(in_dims.len(), 3, "MaxPool2d expects [c, h, w]");
        let (oh, ow) = self.spec.out_hw(in_dims[1], in_dims[2]);
        vec![in_dims[0], oh, ow]
    }

    fn macs(&self, in_dims: &[usize]) -> u64 {
        // Comparisons, not multiplies; count one op per input element read.
        let out = self.out_shape(in_dims);
        (out.iter().product::<usize>() * self.spec.wh * self.spec.ww) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_tensor::SeedRng;

    #[test]
    fn shape_pipeline() {
        let p = MaxPool2d::new(2);
        assert_eq!(p.out_shape(&[64, 32, 32]), vec![64, 16, 16]);
        assert_eq!(p.out_shape(&[128, 3, 3]), vec![128, 1, 1]);
    }

    #[test]
    fn backward_shape_restored() {
        let mut rng = SeedRng::new(1);
        let mut p = MaxPool2d::new(2);
        let x = rng.normal_tensor(&[2, 3, 4, 4], 1.0);
        let mut ctx = Ctx::train(SeedRng::new(0));
        let y = p.forward(x.clone(), &mut ctx);
        assert_eq!(y.dims(), &[2, 3, 2, 2]);
        let dx = p.backward(Tensor::full(y.dims(), 1.0), &mut ctx);
        assert_eq!(dx.dims(), x.dims());
        // Each 2x2 window contributed exactly one gradient unit.
        assert_eq!(dx.sum(), y.numel() as f32);
    }

    #[test]
    fn no_params() {
        let p = MaxPool2d::new(2);
        assert_eq!(p.param_len(), 0);
    }
}

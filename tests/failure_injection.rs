//! Failure-injection and robustness tests: extreme jitter, degenerate
//! datasets, hammered parameter servers.

use sasgd::comm::ps::{PsConfig, PsServer};
use sasgd::core::algorithms::GammaP;
use sasgd::core::{
    run_threaded_sasgd, run_threaded_sasgd_ft, train, Algorithm, FaultConfig, FaultPlan,
    TrainConfig,
};
use sasgd::data::cifar_like::{generate, CifarLikeConfig};
use sasgd::data::Dataset;
use sasgd::nn::models;
use sasgd::simnet::JitterModel;
use sasgd::tensor::SeedRng;
use std::thread;
use std::time::Duration;

#[test]
fn extreme_jitter_changes_time_not_math() {
    // Jitter drives clocks (and async interleaving) but must never change
    // the gradients of the synchronous algorithms: SASGD's trajectory is
    // identical under any jitter level.
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(96, 24, 3));
    let algo = Algorithm::Sasgd {
        p: 4,
        t: 2,
        gamma_p: GammaP::OverP,
        compression: None,
    };
    let mut histories = Vec::new();
    for cv in [0.0f64, 1.5] {
        let mut cfg = TrainConfig::new(3, 8, 0.05, 7);
        cfg.jitter = JitterModel {
            cv,
            learner_spread: cv / 2.0,
        };
        let mut f = || models::tiny_cnn(3, &mut SeedRng::new(2));
        histories.push(train(&mut f, &train_set, &test_set, &algo, &cfg));
    }
    let (calm, wild) = (&histories[0], &histories[1]);
    for (a, b) in calm.records.iter().zip(&wild.records) {
        assert_eq!(
            a.train_loss, b.train_loss,
            "jitter must not perturb SASGD math"
        );
    }
    // But the straggler wait must show up as extra communication time.
    let calm_comm = calm.records.last().expect("records").comm_seconds;
    let wild_comm = wild.records.last().expect("records").comm_seconds;
    assert!(
        wild_comm > calm_comm,
        "wild jitter should cost barrier time"
    );
}

#[test]
fn slow_straggler_learner_still_converges_async() {
    // One learner 10× slower than the rest: Downpour keeps running (its
    // pushes just get staler) and still learns at p=2 with a gentle rate.
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(96, 48, 3));
    let mut cfg = TrainConfig::new(8, 8, 0.02, 3);
    cfg.jitter = JitterModel {
        cv: 0.05,
        learner_spread: 2.0,
    };
    let mut f = || models::tiny_cnn(3, &mut SeedRng::new(4));
    let h = train(
        &mut f,
        &train_set,
        &test_set,
        &Algorithm::Downpour {
            p: 2,
            t: 1,
            staleness_gamma: false,
        },
        &cfg,
    );
    assert!(h.final_test_acc() > 0.45, "acc {:.2}", h.final_test_acc());
}

#[test]
fn single_class_dataset_trains_to_perfection() {
    let n = 32;
    let x = vec![0.5f32; n * 3 * 8 * 8];
    let labels = vec![0usize; n];
    let train_set = Dataset::new(x.clone(), labels.clone(), &[3, 8, 8], 2);
    let test_set = Dataset::new(x, labels, &[3, 8, 8], 2);
    let cfg = TrainConfig::new(3, 8, 0.05, 1);
    let mut f = || models::tiny_cnn(2, &mut SeedRng::new(1));
    let h = train(
        &mut f,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 2,
            t: 1,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        &cfg,
    );
    assert_eq!(h.final_test_acc(), 1.0);
}

#[test]
fn ps_survives_hammering_and_preserves_sums() {
    // 16 clients × 50 pushes of +1 on every coordinate: additions commute,
    // so the final state is exact regardless of interleaving or sharding.
    for shards in [1usize, 3, 8] {
        let m = 257; // deliberately not divisible by the shard counts
        let ps = PsServer::spawn(vec![0.0f32; m], PsConfig { shards });
        thread::scope(|s| {
            for _ in 0..16 {
                let c = ps.client();
                s.spawn(move || {
                    for _ in 0..50 {
                        c.add(&vec![1.0; m]);
                    }
                });
            }
        });
        let end = ps.shutdown();
        assert!(end.iter().all(|&v| v == 800.0), "shards={shards}");
    }
}

#[test]
fn minibatch_larger_than_shard_still_runs() {
    // p=2 over 20 samples with batch 16: shards of 10 get truncated to a
    // single smaller batch per epoch; training must proceed.
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(20, 8, 2));
    let cfg = TrainConfig::new(2, 8, 0.05, 1);
    let mut f = || models::tiny_cnn(2, &mut SeedRng::new(1));
    let h = train(
        &mut f,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 2,
            t: 1,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        &cfg,
    );
    assert_eq!(h.records.len(), 2);
}

/// Failure-detection deadline for the FT tests. Short enough that the
/// dead-rank detection rounds (which wait out leveled
/// `deadline × (level+1)` windows) stay cheap in test time, but with
/// enough headroom that a *healthy* learner descheduled on an
/// oversubscribed CI box (8 learner threads on one core, plus the
/// `parallel` feature's kernel pool) is never falsely evicted —
/// eviction must be decided by the scripted plan, not by load.
const FT_DEADLINE: Duration = Duration::from_millis(800);

#[test]
fn ft_runner_with_empty_plan_matches_plain_threaded_bitwise() {
    // The fault-tolerance layer must be free when nothing fails: the FT
    // runner under `FaultPlan::none()` is the plain threaded runner,
    // parameter for parameter.
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(128, 32, 3));
    let cfg = TrainConfig::new(3, 8, 0.05, 11);
    let f = || models::tiny_cnn(3, &mut SeedRng::new(5));
    let plain = run_threaded_sasgd(&f, &train_set, &test_set, &cfg, 4, 2, GammaP::OverP);
    let ft = run_threaded_sasgd_ft(
        &f,
        &train_set,
        &test_set,
        &cfg,
        4,
        2,
        GammaP::OverP,
        &FaultConfig::default(),
    );
    assert_eq!(
        plain.final_params, ft.final_params,
        "fault-free FT != plain"
    );
    assert!(ft.membership.is_empty(), "no loss, no membership events");
    for (a, b) in plain.records.iter().zip(&ft.records) {
        assert_eq!(a.train_loss, b.train_loss);
        assert_eq!(a.test_acc, b.test_acc);
    }
}

#[test]
fn crash_one_of_eight_mid_epoch_completes_on_survivors() {
    // A learner dies between two sync rounds of the first epoch: the
    // remaining seven must detect it, rebuild the tree, rescale γp, and
    // finish the run — completion of this test IS the no-deadlock check
    // (CI additionally wraps the test job in a hard wall-clock timeout).
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(256, 64, 3));
    let cfg = TrainConfig::new(3, 8, 0.05, 13);
    let f = || models::tiny_cnn(3, &mut SeedRng::new(9));
    let plan = FaultPlan::seeded(0xFA17, 8, 1, 3);
    let crashed = plan.events[0].rank;
    let h = run_threaded_sasgd_ft(
        &f,
        &train_set,
        &test_set,
        &cfg,
        8,
        2,
        GammaP::OverP,
        &FaultConfig {
            plan,
            deadline: FT_DEADLINE,
        },
    );
    assert_eq!(h.records.len(), 3, "all epochs ran on the survivors");
    assert_eq!(h.membership.len(), 1, "exactly one membership change");
    let ev = &h.membership[0];
    assert_eq!(ev.lost, vec![crashed]);
    assert_eq!(ev.survivors, 7);
    assert_eq!(ev.epoch, 1);
    assert!(ev.recovery_seconds > 0.0, "detection took wall-clock time");
    // γp follows the GammaP::OverP policy over the survivor count.
    assert!((ev.gamma_p - 0.05 / 7.0).abs() < 1e-7, "γp {}", ev.gamma_p);
}

#[test]
fn evicted_straggler_retires_with_typed_event() {
    // A rank stalled past the detection deadline is evicted by the
    // survivors; when it wakes, its collective returns `Evicted` and it
    // must *retire* — recording its own exit in `History::retirements` —
    // never panic. Rank 0's membership event and the straggler's
    // retirement are two views of the same loss.
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(128, 32, 2));
    let cfg = TrainConfig::new(2, 8, 0.05, 23);
    let f = || models::tiny_cnn(2, &mut SeedRng::new(5));
    let plan = FaultPlan::none().with_stall(3, 2, 4 * FT_DEADLINE.as_millis() as u64);
    let h = run_threaded_sasgd_ft(
        &f,
        &train_set,
        &test_set,
        &cfg,
        4,
        2,
        GammaP::OverP,
        &FaultConfig {
            plan,
            deadline: FT_DEADLINE,
        },
    );
    assert_eq!(h.membership.len(), 1, "one membership change");
    assert_eq!(h.membership[0].lost, vec![3]);
    assert_eq!(h.retirements.len(), 1, "the evicted rank records its exit");
    assert_eq!(h.retirements[0].rank, 3);
    assert!(h.retirements[0].round >= 1);
    assert!(
        h.retirements[0].reason.contains("evicted"),
        "reason names the cause: {}",
        h.retirements[0].reason
    );
}

#[test]
fn seeded_fault_plans_replay_bitwise() {
    // The same `(seed, p, crashes, max_step)` plan twice: both degraded
    // runs must agree on every parameter and every membership event.
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(256, 64, 3));
    let cfg = TrainConfig::new(2, 8, 0.05, 17);
    let f = || models::tiny_cnn(3, &mut SeedRng::new(3));
    let faults = FaultConfig {
        plan: FaultPlan::seeded(0xD1E, 8, 2, 4),
        deadline: FT_DEADLINE,
    };
    let run = || {
        run_threaded_sasgd_ft(
            &f,
            &train_set,
            &test_set,
            &cfg,
            8,
            2,
            GammaP::OverP,
            &faults,
        )
    };
    let (a, b) = (run(), run());
    assert!(a.final_params.is_some());
    assert_eq!(a.final_params, b.final_params, "degraded run not bitwise");
    assert_eq!(a.membership.len(), b.membership.len());
    for (x, y) in a.membership.iter().zip(&b.membership) {
        assert_eq!(
            (x.round, x.epoch, &x.lost, x.survivors),
            (y.round, y.epoch, &y.lost, y.survivors)
        );
    }
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.train_loss, y.train_loss);
    }
}

#[test]
fn degraded_sasgd_still_beats_one_shot_averaging() {
    // Graceful degradation, quantified: SASGD that loses a learner early
    // and finishes on seven must still beat one-shot model averaging over
    // all eight — the paper's baseline for "no communication until the
    // end" (cf. its Downpour/averaging comparisons).
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(256, 64, 2));
    let cfg = TrainConfig::new(6, 8, 0.05, 19);
    let f = || models::tiny_cnn(2, &mut SeedRng::new(7));
    let degraded = run_threaded_sasgd_ft(
        &f,
        &train_set,
        &test_set,
        &cfg,
        8,
        2,
        GammaP::OverP,
        &FaultConfig {
            plan: FaultPlan::seeded(0xFA17, 8, 1, 3),
            deadline: FT_DEADLINE,
        },
    );
    let mut f2 = || models::tiny_cnn(2, &mut SeedRng::new(7));
    let averaged = train(
        &mut f2,
        &train_set,
        &test_set,
        &Algorithm::ModelAverageOnce { p: 8 },
        &cfg,
    );
    assert!(
        degraded.final_test_acc() > averaged.final_test_acc(),
        "degraded SASGD {:.3} should beat one-shot averaging {:.3}",
        degraded.final_test_acc(),
        averaged.final_test_acc()
    );
}

#[test]
fn zero_learning_rate_is_a_fixed_point() {
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(32, 16, 2));
    let cfg = TrainConfig::new(2, 8, 0.0, 1);
    let mut f = || models::tiny_cnn(2, &mut SeedRng::new(6));
    let h = train(
        &mut f,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 2,
            t: 1,
            gamma_p: GammaP::Fixed(0.0),
            compression: None,
        },
        &cfg,
    );
    let first = h.records.first().expect("records");
    let last = h.records.last().expect("records");
    assert_eq!(
        first.test_acc, last.test_acc,
        "γ=0 must not move parameters"
    );
}

//! `ModelTransport`: the model checker's [`Transport`] implementation.
//!
//! The fourth transport in the workspace (after the in-process crossbeam
//! world, the TCP socket mesh, and the mock) routes **every**
//! `send`/`recv`/`recv_deadline`/`recv_any` through a central cooperative
//! scheduler that owns all nondeterminism. In *controlled* mode a rank
//! thread that reaches a transport operation parks and registers the
//! operation; the scheduler waits until every live rank is parked, computes
//! the set of *enabled* choices (which message a receive could take, whether
//! a deadline branch may fire), and grants exactly one. An interleaving is
//! therefore a replayable sequence of [`Decision`]s — the substrate the
//! DPOR explorer in [`crate::dpor`] enumerates.
//!
//! In *live* mode ([`model_world`]) the same endpoint behaves like the mock
//! transport — condvar blocking, real deadlines — so the transport-
//! conformance suite in `sasgd-comm` can run it as a fourth column and pin
//! its failure semantics to the shared contract table.
//!
//! Alongside messages, the world carries *shared cells*
//! ([`ModelTransport::cell_load`] / [`cell_store`](ModelTransport::cell_store)
//! / [`cell_add`](ModelTransport::cell_add)): scheduler-mediated shared
//! state used to model parameter-server style accumulators. Every message
//! and cell write is stamped with a [`VClock`], so the checker detects
//! races and lost updates as happens-before violations — not as fingerprint
//! divergence after the fact — and detects deadlocks structurally as
//! wait-for-graph cycles, not watchdog timeouts.

// Live mode implements real receive deadlines (condvar wait with
// remaining-time bookkeeping), which is wall-clock by nature; the numeric
// path never reads these clocks. This file is on the analyzer's
// `wall-clock` allow-list for that reason, exactly like mock.rs.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use sasgd_comm::transport::Transport;
use sasgd_comm::world::CommError;

use crate::vclock::VClock;

/// How long the controlled-mode scheduler waits for quiescence before
/// declaring the model itself stalled (a rank thread blocked outside the
/// model — a harness bug, not a scenario deadlock).
const SCHEDULER_STALL: Duration = Duration::from_secs(20);

// ---------------------------------------------------------------------------
// Decisions, choices, channels.
// ---------------------------------------------------------------------------

/// What a granted operation did with its nondeterminism.
///
/// `Fire` is the unique outcome of sends, named receives, and cell
/// operations; `Deliver(i)` picks candidate `i` of a wildcard receive;
/// `Timeout` takes the deadline branch of a deadline-bounded receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChoiceKind {
    /// The operation's only data-flow outcome (send, named recv, cell op).
    Fire,
    /// Deliver from candidate index `i` of a wildcard receive.
    Deliver(usize),
    /// Take the deadline branch of a deadline-bounded receive.
    Timeout,
}

/// One step of an interleaving: `rank` performed its pending operation
/// with outcome `kind`. A `Vec<Decision>` is a complete, replayable
/// schedule — the witness format every model-checker report uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// World rank that moved.
    pub rank: usize,
    /// Outcome chosen for its pending operation.
    pub kind: ChoiceKind,
}

/// Serialize a decision sequence as a compact replay string
/// (`"0f.1f.0d1.2t"`): `<rank>` then `f` (fire) / `d<i>` (deliver
/// candidate `i`) / `t` (timeout), dot-separated.
pub fn witness_string(decisions: &[Decision]) -> String {
    decisions
        .iter()
        .map(|d| {
            let code = match d.kind {
                ChoiceKind::Fire => "f".to_string(),
                ChoiceKind::Deliver(i) => format!("d{i}"),
                ChoiceKind::Timeout => "t".to_string(),
            };
            format!("{}{}", d.rank, code)
        })
        .collect::<Vec<_>>()
        .join(".")
}

/// Parse a replay string produced by [`witness_string`].
pub fn parse_witness(s: &str) -> Option<Vec<Decision>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split('.')
        .map(|part| {
            let letter = part.find(|c: char| c.is_ascii_alphabetic())?;
            let rank: usize = part[..letter].parse().ok()?;
            let kind = match &part[letter..letter + 1] {
                "f" => ChoiceKind::Fire,
                "t" => ChoiceKind::Timeout,
                "d" => ChoiceKind::Deliver(part[letter + 1..].parse().ok()?),
                _ => return None,
            };
            Some(Decision { rank, kind })
        })
        .collect()
}

/// A dependence-analysis resource: a message channel `(src, dst, tag)` or a
/// shared cell. Two steps of different ranks commute unless their resource
/// sets intersect (loads on the same cell still commute with each other).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Chan {
    /// A point-to-point message channel.
    Msg(usize, usize, u64),
    /// A shared cell.
    Cell(u32),
}

/// One enabled choice at a scheduling point, with the resources it touches
/// (for the explorer's dependence relation).
#[derive(Debug, Clone)]
pub struct EnabledChoice {
    /// World rank whose pending operation this choice resolves.
    pub rank: usize,
    /// The outcome it would take.
    pub kind: ChoiceKind,
    /// Resources the step touches.
    pub chans: Vec<Chan>,
    /// Pure read (commutes with other pure reads on the same cell).
    pub is_load: bool,
}

impl EnabledChoice {
    /// Would firing `self` and `other` in either order reach the same
    /// state? Same-rank steps never commute (program order); otherwise
    /// steps commute unless they share a resource (two loads of one cell
    /// still commute).
    pub fn dependent(&self, other: &EnabledChoice) -> bool {
        if self.rank == other.rank {
            return true;
        }
        self.chans.iter().any(|c| {
            other.chans.contains(c)
                && !(self.is_load && other.is_load && matches!(c, Chan::Cell(_)))
        })
    }
}

// ---------------------------------------------------------------------------
// World state.
// ---------------------------------------------------------------------------

/// A queued message.
struct Msg {
    payload: Vec<f32>,
    clock: VClock,
    /// Global arrival number — total order of sends, used for the per-src
    /// FIFO rule of wildcard receives and live-mode arrival order.
    seq: u64,
}

/// A shared cell: value plus the clock of its last write.
struct Cell {
    value: f32,
    clock: VClock,
}

/// A parked operation awaiting a scheduler grant. Source/destination ranks
/// are stored in both world coordinates (channel keys) and view coordinates
/// (error attribution for subgroup endpoints).
enum PendingOp {
    Send {
        dst_w: usize,
        dst_v: usize,
        tag: u64,
        payload: Vec<f32>,
    },
    Recv {
        src_w: usize,
        src_v: usize,
        tag: u64,
        can_timeout: bool,
    },
    RecvAny {
        /// `(src_world, src_view, tag)` per candidate, in caller order.
        cands: Vec<(usize, usize, u64)>,
        can_timeout: bool,
    },
    CellLoad {
        cell: u32,
    },
    CellStore {
        cell: u32,
        value: f32,
    },
    CellAdd {
        cell: u32,
        delta: f32,
    },
}

/// What the scheduler hands back to a parked rank.
enum Grant {
    Sent(Result<(), CommError>),
    Received(Result<(usize, Vec<f32>), CommError>),
    Value(f32),
    /// Execution aborted (redundant branch or post-deadlock teardown):
    /// surface as `Disconnected` so rank bodies unwind through their normal
    /// error paths.
    Abort,
}

/// A detected happens-before violation or structural deadlock, with the
/// decision prefix that reproduces it.
pub struct ModelEvent {
    /// Human-readable description.
    pub detail: String,
    /// Replayable decision prefix up to and including the offending step.
    pub witness: Vec<Decision>,
}

/// Execution mode of a model world.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Condvar blocking and real deadlines (conformance column).
    Live,
    /// Every operation parks for a scheduler grant.
    Controlled,
}

/// The mutable state of one model world.
struct WorldState {
    p: usize,
    mode: Mode,
    queues: BTreeMap<(usize, usize, u64), VecDeque<Msg>>,
    /// Primary endpoint dropped — the rank has left the world.
    finished: Vec<bool>,
    parked: Vec<Option<PendingOp>>,
    grants: Vec<Option<Grant>>,
    clocks: Vec<VClock>,
    cells: BTreeMap<u32, Cell>,
    next_seq: u64,
    aborted: bool,
    /// Decisions applied so far (controlled mode).
    log: Vec<Decision>,
    /// Live-src deadline branches the current execution may still take.
    timeouts_left: u32,
    /// Check wildcard receives for concurrent, bitwise-different matches.
    check_races: bool,
    races: Vec<ModelEvent>,
    lost_updates: Vec<ModelEvent>,
    cycles: Vec<ModelEvent>,
}

/// Lock + condvar pair every endpoint of a world shares.
struct WorldShared {
    state: Mutex<WorldState>,
    cv: Condvar,
}

type StateGuard<'a> = MutexGuard<'a, WorldState>;

impl WorldShared {
    fn lock(&self) -> StateGuard<'_> {
        self.state.lock().expect("model world lock")
    }
}

// ---------------------------------------------------------------------------
// The endpoint.
// ---------------------------------------------------------------------------

/// One rank's endpoint into a model world — the fourth [`Transport`] impl.
///
/// Endpoints are produced by [`model_world`] (live mode) or by the
/// controlled-mode harness in [`crate::dpor`]. [`ModelTransport::subgroup`]
/// derives rank-remapped views for hierarchy bundles.
pub struct ModelTransport {
    shared: Arc<WorldShared>,
    /// World rank.
    rank_w: usize,
    /// View: `view rank -> world rank`. `None` is the identity (primary).
    map: Option<Vec<usize>>,
    /// View rank (equals `rank_w` for primaries).
    rank_v: usize,
    size_v: usize,
    /// Only the primary endpoint's drop marks the rank finished.
    primary: bool,
    op_counter: u64,
}

/// Build the `p` primary endpoints of a fresh **live-mode** model world —
/// the factory the transport-conformance suite uses.
pub fn model_world(p: usize) -> Vec<ModelTransport> {
    world_with_mode(p, Mode::Live, 0, false).0
}

/// Build a **controlled-mode** world: endpoints plus the shared handle the
/// scheduler drives. `timeout_budget` bounds live-src deadline branches per
/// execution; `check_races` arms the wildcard-receive race check.
fn world_with_mode(
    p: usize,
    mode: Mode,
    timeout_budget: u32,
    check_races: bool,
) -> (Vec<ModelTransport>, Arc<WorldShared>) {
    assert!(p > 0, "world needs at least one rank");
    let shared = Arc::new(WorldShared {
        state: Mutex::new(WorldState {
            p,
            mode,
            queues: BTreeMap::new(),
            finished: vec![false; p],
            parked: (0..p).map(|_| None).collect(),
            grants: (0..p).map(|_| None).collect(),
            clocks: (0..p).map(|_| VClock::new(p)).collect(),
            cells: BTreeMap::new(),
            next_seq: 0,
            aborted: false,
            log: Vec::new(),
            timeouts_left: timeout_budget,
            check_races,
            races: Vec::new(),
            lost_updates: Vec::new(),
            cycles: Vec::new(),
        }),
        cv: Condvar::new(),
    });
    let endpoints = (0..p)
        .map(|rank| ModelTransport {
            shared: Arc::clone(&shared),
            rank_w: rank,
            map: None,
            rank_v: rank,
            size_v: p,
            primary: true,
            op_counter: 0,
        })
        .collect();
    (endpoints, shared)
}

impl ModelTransport {
    /// A rank-remapped view of this endpoint for a sub-communicator (e.g.
    /// the `local`/`leaders` members of a hierarchy bundle): `members`
    /// lists the world ranks of the subgroup in view-rank order and must
    /// contain this endpoint's rank. The view shares the world but not the
    /// op counter, and dropping it does not hang up the rank.
    pub fn subgroup(&self, members: &[usize]) -> ModelTransport {
        let rank_v = members
            .iter()
            .position(|&m| m == self.rank_w)
            .expect("subgroup must contain own rank");
        ModelTransport {
            shared: Arc::clone(&self.shared),
            rank_w: self.rank_w,
            map: Some(members.to_vec()),
            rank_v,
            size_v: members.len(),
            primary: false,
            op_counter: 0,
        }
    }

    fn world_rank(&self, view: usize) -> usize {
        match &self.map {
            Some(m) => m[view],
            None => view,
        }
    }

    /// Controlled-mode shared-cell read (scheduler-mediated; joins the
    /// cell's last-writer clock). Live mode reads directly under the lock.
    pub fn cell_load(&mut self, cell: u32) -> Result<f32, CommError> {
        self.run_op(PendingOp::CellLoad { cell })?
    }

    /// Shared-cell blind write. The checker flags the write as a *lost
    /// update* when the writer's clock does not dominate the cell's
    /// last-writer clock (the previous write was never observed).
    pub fn cell_store(&mut self, cell: u32, value: f32) -> Result<(), CommError> {
        self.run_op(PendingOp::CellStore { cell, value })?
            .map(|_| ())
    }

    /// Shared-cell atomic read-modify-write (`+= delta`); joins the cell
    /// clock, so it can never lose an update. Returns the new value.
    pub fn cell_add(&mut self, cell: u32, delta: f32) -> Result<f32, CommError> {
        self.run_op(PendingOp::CellAdd { cell, delta })?
    }

    /// Dispatch an operation through the mode-appropriate path.
    fn run_op(&mut self, op: PendingOp) -> Result<Result<f32, CommError>, CommError> {
        let mode = self.shared.lock().mode;
        let grant = match mode {
            Mode::Controlled => self.scheduled(op),
            Mode::Live => self.live_cell(op),
        };
        match grant {
            Grant::Value(v) => Ok(Ok(v)),
            Grant::Abort => Err(CommError::Disconnected {
                src: self.rank_v,
                tag: 0,
            }),
            _ => unreachable!("cell ops grant values"),
        }
    }

    /// Live-mode cell operation: immediate, under the lock.
    fn live_cell(&self, op: PendingOp) -> Grant {
        let mut st = self.shared.lock();
        let r = self.rank_w;
        match op {
            PendingOp::CellLoad { cell } => {
                let (value, clock) = cell_view(&mut st, cell);
                st.clocks[r].join(&clock);
                st.clocks[r].tick(r);
                Grant::Value(value)
            }
            PendingOp::CellStore { cell, value } => {
                st.clocks[r].tick(r);
                let stamp = st.clocks[r].clone();
                let p = st.p;
                let c = st.cells.entry(cell).or_insert_with(|| Cell {
                    value: 0.0,
                    clock: VClock::new(p),
                });
                c.value = value;
                c.clock = stamp;
                Grant::Value(value)
            }
            PendingOp::CellAdd { cell, delta } => {
                let (_, clock) = cell_view(&mut st, cell);
                st.clocks[r].join(&clock);
                st.clocks[r].tick(r);
                let stamp = st.clocks[r].clone();
                let c = st.cells.get_mut(&cell).expect("cell initialized");
                c.value += delta;
                c.clock = stamp;
                Grant::Value(c.value)
            }
            _ => unreachable!("live_cell handles cell ops only"),
        }
    }

    /// Controlled mode: park the operation and wait for the scheduler's
    /// grant.
    fn scheduled(&self, op: PendingOp) -> Grant {
        let mut st = self.shared.lock();
        if st.aborted {
            return Grant::Abort;
        }
        st.parked[self.rank_w] = Some(op);
        self.shared.cv.notify_all();
        loop {
            if let Some(g) = st.grants[self.rank_w].take() {
                return g;
            }
            if st.aborted && st.parked[self.rank_w].is_some() {
                st.parked[self.rank_w] = None;
                return Grant::Abort;
            }
            st = self.shared.cv.wait(st).expect("model world lock");
        }
    }

    // ---------------------------------------------------------------- live

    /// Live-mode send: immediate enqueue, `PeerGone` on a finished peer.
    fn live_send(
        &self,
        dst_w: usize,
        dst_v: usize,
        tag: u64,
        payload: Vec<f32>,
    ) -> Result<(), CommError> {
        let mut st = self.shared.lock();
        if st.finished[dst_w] {
            return Err(CommError::PeerGone { peer: dst_v });
        }
        let r = self.rank_w;
        st.clocks[r].tick(r);
        let msg = Msg {
            payload,
            clock: st.clocks[r].clone(),
            seq: st.next_seq,
        };
        st.next_seq += 1;
        st.queues.entry((r, dst_w, tag)).or_default().push_back(msg);
        self.shared.cv.notify_all();
        Ok(())
    }

    /// Live-mode receive over `cands` (`(src_world, src_view, tag)`),
    /// taking the earliest arrival; blocks (or waits out `timeout`).
    fn live_recv(
        &self,
        cands: &[(usize, usize, u64)],
        timeout: Option<Duration>,
    ) -> Result<(usize, Vec<f32>), CommError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let me = self.rank_w;
        let &(_, fsrc_v, ftag) = cands.first().ok_or(CommError::NoCandidates)?;
        let mut st = self.shared.lock();
        loop {
            // Earliest-arrival match across the candidate channels.
            let best = cands
                .iter()
                .filter_map(|&(sw, sv, tag)| {
                    st.queues
                        .get(&(sw, me, tag))
                        .and_then(|q| q.front())
                        .map(|m| (m.seq, sw, sv, tag))
                })
                .min_by_key(|&(seq, ..)| seq);
            if let Some((_, sw, sv, tag)) = best {
                let msg = st
                    .queues
                    .get_mut(&(sw, me, tag))
                    .and_then(|q| q.pop_front())
                    .expect("matched head");
                st.clocks[me].join(&msg.clock);
                st.clocks[me].tick(me);
                return Ok((sv, msg.payload));
            }
            let all_gone = cands.iter().all(|&(sw, ..)| st.finished[sw]);
            match deadline {
                Some(dl) => {
                    if all_gone || Instant::now() >= dl {
                        return Err(CommError::Timeout {
                            src: fsrc_v,
                            tag: ftag,
                        });
                    }
                    let remaining = dl.saturating_duration_since(Instant::now());
                    let (guard, _) = self
                        .shared
                        .cv
                        .wait_timeout(st, remaining)
                        .expect("model world lock");
                    st = guard;
                }
                None => {
                    if all_gone {
                        return Err(CommError::Disconnected {
                            src: fsrc_v,
                            tag: ftag,
                        });
                    }
                    st = self.shared.cv.wait(st).expect("model world lock");
                }
            }
        }
    }
}

/// Current `(value, last-writer clock)` of a cell, initializing on first
/// touch.
fn cell_view(st: &mut StateGuard<'_>, cell: u32) -> (f32, VClock) {
    let p = st.p;
    let c = st.cells.entry(cell).or_insert_with(|| Cell {
        value: 0.0,
        clock: VClock::new(p),
    });
    (c.value, c.clock.clone())
}

impl Transport for ModelTransport {
    fn rank(&self) -> usize {
        self.rank_v
    }

    fn size(&self) -> usize {
        self.size_v
    }

    fn send(&mut self, dst: usize, tag: u64, payload: Vec<f32>) -> Result<(), CommError> {
        let dst_w = self.world_rank(dst);
        let mode = self.shared.lock().mode;
        match mode {
            Mode::Live => self.live_send(dst_w, dst, tag, payload),
            Mode::Controlled => match self.scheduled(PendingOp::Send {
                dst_w,
                dst_v: dst,
                tag,
                payload,
            }) {
                Grant::Sent(res) => res,
                Grant::Abort => Err(CommError::Disconnected { src: dst, tag }),
                _ => unreachable!("send grants Sent"),
            },
        }
    }

    fn recv(&mut self, src: usize, tag: u64) -> Result<Vec<f32>, CommError> {
        self.recv_inner(src, tag, false).map(|(_, v)| v)
    }

    fn recv_deadline(
        &mut self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f32>, CommError> {
        let mode = self.shared.lock().mode;
        match mode {
            Mode::Live => {
                let src_w = self.world_rank(src);
                self.live_recv(&[(src_w, src, tag)], Some(timeout))
                    .map(|(_, v)| v)
            }
            Mode::Controlled => self.recv_inner(src, tag, true).map(|(_, v)| v),
        }
    }

    fn recv_any(&mut self, candidates: &[(usize, u64)]) -> Result<(usize, Vec<f32>), CommError> {
        self.recv_any_inner(candidates, false)
    }

    fn recv_any_deadline(
        &mut self,
        candidates: &[(usize, u64)],
        timeout: Duration,
    ) -> Result<(usize, Vec<f32>), CommError> {
        let mode = self.shared.lock().mode;
        match mode {
            Mode::Live => {
                let cands: Vec<(usize, usize, u64)> = candidates
                    .iter()
                    .map(|&(s, t)| (self.world_rank(s), s, t))
                    .collect();
                self.live_recv(&cands, Some(timeout))
            }
            Mode::Controlled => self.recv_any_inner(candidates, true),
        }
    }

    fn next_op(&mut self) -> u64 {
        let op = self.op_counter;
        self.op_counter += 1;
        op
    }
}

impl ModelTransport {
    fn recv_inner(
        &mut self,
        src: usize,
        tag: u64,
        can_timeout: bool,
    ) -> Result<(usize, Vec<f32>), CommError> {
        let src_w = self.world_rank(src);
        let mode = self.shared.lock().mode;
        match mode {
            Mode::Live => self.live_recv(&[(src_w, src, tag)], None),
            Mode::Controlled => match self.scheduled(PendingOp::Recv {
                src_w,
                src_v: src,
                tag,
                can_timeout,
            }) {
                Grant::Received(res) => res,
                Grant::Abort => Err(CommError::Disconnected { src, tag }),
                _ => unreachable!("recv grants Received"),
            },
        }
    }

    fn recv_any_inner(
        &mut self,
        candidates: &[(usize, u64)],
        can_timeout: bool,
    ) -> Result<(usize, Vec<f32>), CommError> {
        if candidates.is_empty() {
            return Err(CommError::NoCandidates);
        }
        let cands: Vec<(usize, usize, u64)> = candidates
            .iter()
            .map(|&(s, t)| (self.world_rank(s), s, t))
            .collect();
        let mode = self.shared.lock().mode;
        match mode {
            Mode::Live => self.live_recv(&cands, None),
            Mode::Controlled => match self.scheduled(PendingOp::RecvAny { cands, can_timeout }) {
                Grant::Received(res) => res,
                Grant::Abort => Err(CommError::Disconnected {
                    src: candidates[0].0,
                    tag: candidates[0].1,
                }),
                _ => unreachable!("recv_any grants Received"),
            },
        }
    }
}

impl Drop for ModelTransport {
    fn drop(&mut self) {
        if !self.primary {
            return;
        }
        // Hangup is immediate (like the mock): the next send to this rank
        // fails with PeerGone, and the controlled scheduler sees the rank
        // as finished.
        let mut st = self.shared.lock();
        st.finished[self.rank_w] = true;
        self.shared.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// The controlled-mode scheduler.
// ---------------------------------------------------------------------------

/// How one controlled execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every rank ran to completion.
    Completed,
    /// A wait-for cycle (or orphaned wait) left no operation enabled.
    Deadlock,
    /// The exploration policy declined every enabled choice (sleep-set
    /// blocked): the branch is redundant and was torn down.
    SleepBlocked,
    /// The harness itself failed (replay divergence, stalled rank thread).
    HarnessError,
}

/// One scheduling point of a recorded execution.
pub struct StepRecord {
    /// Enabled choices at this point, in canonical (rank, kind) order.
    pub enabled: Vec<EnabledChoice>,
    /// Index into `enabled` of the fired choice.
    pub taken: usize,
}

/// A fully recorded controlled execution.
pub struct ExecRecord {
    /// The decision sequence, step by step.
    pub steps: Vec<StepRecord>,
    /// How the execution ended.
    pub outcome: Outcome,
    /// FNV-1a over every rank's result bits (completed runs only).
    pub fingerprint: Option<u64>,
    /// Per-rank scenario errors (completed runs; aborted ranks excluded).
    pub errors: Vec<String>,
    /// Wildcard-receive races detected (concurrent, bitwise-different
    /// matches co-enabled at one receive).
    pub races: Vec<ModelEvent>,
    /// Blind writes that clobbered an unobserved write.
    pub lost_updates: Vec<ModelEvent>,
    /// Structural deadlocks (wait-for cycles / orphaned waits).
    pub cycles: Vec<ModelEvent>,
}

impl ExecRecord {
    /// The decision sequence of this execution.
    pub fn decisions(&self) -> Vec<Decision> {
        self.steps
            .iter()
            .map(|s| {
                let c = &s.enabled[s.taken];
                Decision {
                    rank: c.rank,
                    kind: c.kind,
                }
            })
            .collect()
    }
}

/// One rank's body in a controlled execution: owns its endpoint, returns
/// the rank's result vector (fingerprinted) or a scenario error.
pub type ModelRankFn = Arc<dyn Fn(ModelTransport) -> Result<Vec<f32>, String> + Send + Sync>;

/// What one rank's body produced: its result vector or a scenario error.
type RankOutcome = Result<Vec<f32>, String>;

/// The exploration policy: given the enabled set (canonical order), pick
/// the index to fire, or `None` to abandon the branch (sleep-blocked).
pub type Policy<'a> = &'a mut dyn FnMut(&[EnabledChoice]) -> Option<usize>;

/// Compute the enabled choices of the current quiescent state, in
/// canonical order (by rank, then [`ChoiceKind`] order).
fn enabled_choices(st: &StateGuard<'_>) -> Vec<EnabledChoice> {
    let mut out = Vec::new();
    for r in 0..st.p {
        let Some(op) = st.parked[r].as_ref() else {
            continue;
        };
        match op {
            PendingOp::Send { dst_w, tag, .. } => out.push(EnabledChoice {
                rank: r,
                kind: ChoiceKind::Fire,
                chans: vec![Chan::Msg(r, *dst_w, *tag)],
                is_load: false,
            }),
            PendingOp::Recv {
                src_w,
                tag,
                can_timeout,
                ..
            } => {
                let chan = Chan::Msg(*src_w, r, *tag);
                let has_msg = st
                    .queues
                    .get(&(*src_w, r, *tag))
                    .is_some_and(|q| !q.is_empty());
                if has_msg {
                    out.push(EnabledChoice {
                        rank: r,
                        kind: ChoiceKind::Fire,
                        chans: vec![chan],
                        is_load: false,
                    });
                } else if *can_timeout && (st.finished[*src_w] || st.timeouts_left > 0) {
                    out.push(EnabledChoice {
                        rank: r,
                        kind: ChoiceKind::Timeout,
                        chans: vec![chan],
                        is_load: false,
                    });
                }
            }
            PendingOp::RecvAny { cands, can_timeout } => {
                let chans: Vec<Chan> = cands
                    .iter()
                    .map(|&(sw, _, t)| Chan::Msg(sw, r, t))
                    .collect();
                let deliverable = deliverable_candidates(st, r, cands);
                if deliverable.is_empty() {
                    let all_gone = cands.iter().all(|&(sw, ..)| st.finished[sw]);
                    if *can_timeout && (all_gone || st.timeouts_left > 0) {
                        out.push(EnabledChoice {
                            rank: r,
                            kind: ChoiceKind::Timeout,
                            chans,
                            is_load: false,
                        });
                    }
                } else {
                    for idx in deliverable {
                        out.push(EnabledChoice {
                            rank: r,
                            kind: ChoiceKind::Deliver(idx),
                            chans: chans.clone(),
                            is_load: false,
                        });
                    }
                }
            }
            PendingOp::CellLoad { cell } => out.push(EnabledChoice {
                rank: r,
                kind: ChoiceKind::Fire,
                chans: vec![Chan::Cell(*cell)],
                is_load: true,
            }),
            PendingOp::CellStore { cell, .. } | PendingOp::CellAdd { cell, .. } => {
                out.push(EnabledChoice {
                    rank: r,
                    kind: ChoiceKind::Fire,
                    chans: vec![Chan::Cell(*cell)],
                    is_load: false,
                })
            }
        }
    }
    out
}

/// Candidate indices a wildcard receive could take right now. A message is
/// deliverable only if it is the *earliest* undelivered arrival from its
/// sender among the candidate channels (per-src FIFO: real wires deliver
/// one sender's messages in send order, whatever their tags).
fn deliverable_candidates(
    st: &StateGuard<'_>,
    me: usize,
    cands: &[(usize, usize, u64)],
) -> Vec<usize> {
    let mut out = Vec::new();
    for (idx, &(sw, _, tag)) in cands.iter().enumerate() {
        let Some(head_seq) = st
            .queues
            .get(&(sw, me, tag))
            .and_then(|q| q.front())
            .map(|m| m.seq)
        else {
            continue;
        };
        let earliest_from_src = cands
            .iter()
            .filter(|&&(osw, _, otag)| osw == sw && otag != tag)
            .filter_map(|&(osw, _, otag)| {
                st.queues
                    .get(&(osw, me, otag))
                    .and_then(|q| q.front())
                    .map(|m| m.seq)
            })
            .all(|other_seq| head_seq < other_seq);
        if earliest_from_src {
            out.push(idx);
        }
    }
    out
}

/// Fire one chosen step: mutate the world, stamp clocks, record
/// happens-before violations, and grant the owning rank.
fn apply_choice(st: &mut StateGuard<'_>, choice: &EnabledChoice) {
    let r = choice.rank;
    st.log.push(Decision {
        rank: r,
        kind: choice.kind,
    });
    let op = st.parked[r].take().expect("choice for a parked rank");
    let grant = match (op, choice.kind) {
        (
            PendingOp::Send {
                dst_w,
                dst_v,
                tag,
                payload,
            },
            ChoiceKind::Fire,
        ) => {
            st.clocks[r].tick(r);
            if st.finished[dst_w] {
                Grant::Sent(Err(CommError::PeerGone { peer: dst_v }))
            } else {
                let msg = Msg {
                    payload,
                    clock: st.clocks[r].clone(),
                    seq: st.next_seq,
                };
                st.next_seq += 1;
                st.queues.entry((r, dst_w, tag)).or_default().push_back(msg);
                Grant::Sent(Ok(()))
            }
        }
        (
            PendingOp::Recv {
                src_w, src_v, tag, ..
            },
            ChoiceKind::Fire,
        ) => {
            let msg = st
                .queues
                .get_mut(&(src_w, r, tag))
                .and_then(|q| q.pop_front())
                .expect("enabled recv has a message");
            let clock = msg.clock;
            st.clocks[r].join(&clock);
            st.clocks[r].tick(r);
            Grant::Received(Ok((src_v, msg.payload)))
        }
        (
            PendingOp::Recv {
                src_w, src_v, tag, ..
            },
            ChoiceKind::Timeout,
        ) => {
            if !st.finished[src_w] {
                st.timeouts_left = st.timeouts_left.saturating_sub(1);
            }
            st.clocks[r].tick(r);
            Grant::Received(Err(CommError::Timeout { src: src_v, tag }))
        }
        (PendingOp::RecvAny { cands, .. }, ChoiceKind::Deliver(idx)) => {
            if st.check_races {
                record_wildcard_races(st, r, &cands);
            }
            let (sw, sv, tag) = cands[idx];
            let msg = st
                .queues
                .get_mut(&(sw, r, tag))
                .and_then(|q| q.pop_front())
                .expect("enabled deliver has a message");
            let clock = msg.clock;
            st.clocks[r].join(&clock);
            st.clocks[r].tick(r);
            Grant::Received(Ok((sv, msg.payload)))
        }
        (PendingOp::RecvAny { cands, .. }, ChoiceKind::Timeout) => {
            if !cands.iter().all(|&(sw, ..)| st.finished[sw]) {
                st.timeouts_left = st.timeouts_left.saturating_sub(1);
            }
            st.clocks[r].tick(r);
            let &(_, sv, tag) = cands.first().expect("nonempty candidates");
            Grant::Received(Err(CommError::Timeout { src: sv, tag }))
        }
        (PendingOp::CellLoad { cell }, ChoiceKind::Fire) => {
            let (value, clock) = cell_view(st, cell);
            st.clocks[r].join(&clock);
            st.clocks[r].tick(r);
            Grant::Value(value)
        }
        (PendingOp::CellStore { cell, value }, ChoiceKind::Fire) => {
            let (_, clock) = cell_view(st, cell);
            if !st.clocks[r].dominates(&clock) {
                let witness = st.log.clone();
                st.lost_updates.push(ModelEvent {
                    detail: format!(
                        "lost update: rank {r} stored cell {cell} without having observed \
                         the previous write (writer clocks concurrent)"
                    ),
                    witness,
                });
            }
            st.clocks[r].tick(r);
            let stamp = st.clocks[r].clone();
            let c = st.cells.get_mut(&cell).expect("cell initialized");
            c.value = value;
            c.clock = stamp;
            Grant::Value(value)
        }
        (PendingOp::CellAdd { cell, delta }, ChoiceKind::Fire) => {
            let (_, clock) = cell_view(st, cell);
            st.clocks[r].join(&clock);
            st.clocks[r].tick(r);
            let stamp = st.clocks[r].clone();
            let c = st.cells.get_mut(&cell).expect("cell initialized");
            c.value += delta;
            c.clock = stamp;
            Grant::Value(c.value)
        }
        (_, kind) => unreachable!("choice {kind:?} does not match the parked op"),
    };
    st.grants[r] = Some(grant);
}

/// At a wildcard delivery with several deliverable messages: any pair whose
/// clocks are concurrent and whose payloads differ bitwise is a
/// happens-before race — the receive's outcome depends on the schedule.
fn record_wildcard_races(st: &mut StateGuard<'_>, me: usize, cands: &[(usize, usize, u64)]) {
    let heads: Vec<(usize, u64, VClock, Vec<u32>)> = cands
        .iter()
        .filter_map(|&(sw, _, tag)| {
            st.queues
                .get(&(sw, me, tag))
                .and_then(|q| q.front())
                .map(|m| {
                    (
                        sw,
                        tag,
                        m.clock.clone(),
                        m.payload.iter().map(|f| f.to_bits()).collect(),
                    )
                })
        })
        .collect();
    for i in 0..heads.len() {
        for j in i + 1..heads.len() {
            let (sa, ta, ca, pa) = &heads[i];
            let (sb, tb, cb, pb) = &heads[j];
            if ca.concurrent(cb) && pa != pb {
                let witness = st.log.clone();
                st.races.push(ModelEvent {
                    detail: format!(
                        "race: wildcard receive at rank {me} can match concurrent, \
                         bitwise-different messages from rank {sa} (tag {ta}) and \
                         rank {sb} (tag {tb})"
                    ),
                    witness,
                });
                return; // one witness per delivery point is enough
            }
        }
    }
}

/// Build the wait-for report of a stuck quiescent state: one line per
/// blocked rank, plus the exact cycle (or orphaned wait) as the event.
fn wait_for_report(st: &StateGuard<'_>) -> String {
    let mut lines = Vec::new();
    // Edges rank -> ranks it waits on, with the blocking (src, tag).
    let mut waits: BTreeMap<usize, Vec<(usize, u64)>> = BTreeMap::new();
    for r in 0..st.p {
        match st.parked[r].as_ref() {
            Some(PendingOp::Recv { src_w, tag, .. }) => {
                waits.insert(r, vec![(*src_w, *tag)]);
            }
            Some(PendingOp::RecvAny { cands, .. }) => {
                waits.insert(r, cands.iter().map(|&(sw, _, t)| (sw, t)).collect());
            }
            _ => {}
        }
    }
    for (&r, targets) in &waits {
        for &(s, t) in targets {
            lines.push(format!("rank {r} blocked on (src {s}, tag {t})"));
        }
    }
    // Find a cycle among blocked ranks by following first blocked targets.
    let mut cycle = None;
    'outer: for &start in waits.keys() {
        let mut path: Vec<usize> = vec![start];
        let mut cur = start;
        while let Some(next) = waits
            .get(&cur)
            .and_then(|ts| ts.iter().map(|&(s, _)| s).find(|s| waits.contains_key(s)))
        {
            if let Some(pos) = path.iter().position(|&x| x == next) {
                cycle = Some(path[pos..].to_vec());
                break 'outer;
            }
            path.push(next);
            cur = next;
        }
    }
    match cycle {
        Some(ranks) => {
            let hops: Vec<String> = ranks
                .iter()
                .map(|&r| {
                    let &(s, t) = waits[&r]
                        .iter()
                        .find(|&&(s, _)| ranks.contains(&s))
                        .unwrap_or(&waits[&r][0]);
                    format!("rank {r} blocked on (src {s}, tag {t})")
                })
                .collect();
            format!(
                "wait-for cycle: {} -> rank {}; all waits: {}",
                hops.join(" -> "),
                ranks[0],
                lines.join("; ")
            )
        }
        None => format!("orphaned wait (peer finished): {}", lines.join("; ")),
    }
}

/// Run one controlled execution of `bodies` (rank order), scheduling with
/// `policy`. `prefix_ok` replays are the caller's business — the policy
/// sees every scheduling point, including replayed ones.
pub fn run_execution(
    p: usize,
    bodies: &ModelRankFn,
    timeout_budget: u32,
    check_races: bool,
    policy: Policy<'_>,
) -> ExecRecord {
    let (endpoints, shared) = world_with_mode(p, Mode::Controlled, timeout_budget, check_races);
    let results: Mutex<Vec<Option<RankOutcome>>> = Mutex::new((0..p).map(|_| None).collect());
    let mut steps = Vec::new();
    let mut outcome = Outcome::Completed;
    std::thread::scope(|scope| {
        for (rank, endpoint) in endpoints.into_iter().enumerate() {
            let bodies = Arc::clone(bodies);
            let results = &results;
            // lint:allow(raw-spawn): the model checker is the sanctioned
            // thread host (SPAWN_ALLOWED covers crates/analysis/).
            scope.spawn(move || {
                let out = bodies(endpoint);
                results.lock().expect("results lock")[rank] = Some(out);
            });
        }
        // The scheduler: wait for quiescence, fire one choice, repeat.
        loop {
            let mut st = shared.lock();
            let quiescent = |s: &WorldState| {
                (0..p).all(|r| s.finished[r] || (s.parked[r].is_some() && s.grants[r].is_none()))
            };
            let mut stalled = false;
            while !quiescent(&st) {
                let (guard, timed_out) = shared
                    .cv
                    .wait_timeout(st, SCHEDULER_STALL)
                    .expect("model world lock");
                st = guard;
                if timed_out.timed_out() && !quiescent(&st) {
                    stalled = true;
                    break;
                }
            }
            if stalled {
                outcome = Outcome::HarnessError;
                st.aborted = true;
                shared.cv.notify_all();
                break;
            }
            if (0..p).all(|r| st.finished[r]) {
                break;
            }
            let enabled = enabled_choices(&st);
            if enabled.is_empty() {
                let report = wait_for_report(&st);
                let witness = st.log.clone();
                st.cycles.push(ModelEvent {
                    detail: report,
                    witness,
                });
                outcome = Outcome::Deadlock;
                st.aborted = true;
                shared.cv.notify_all();
                break;
            }
            let Some(idx) = policy(&enabled) else {
                outcome = Outcome::SleepBlocked;
                st.aborted = true;
                shared.cv.notify_all();
                break;
            };
            apply_choice(&mut st, &enabled[idx]);
            steps.push(StepRecord {
                enabled,
                taken: idx,
            });
            shared.cv.notify_all();
        }
    });
    let mut st = shared.lock();
    let races = std::mem::take(&mut st.races);
    let lost_updates = std::mem::take(&mut st.lost_updates);
    let cycles = std::mem::take(&mut st.cycles);
    drop(st);
    let collected = results.into_inner().expect("results lock");
    let mut errors = Vec::new();
    let mut fingerprint = None;
    if outcome == Outcome::Completed {
        let mut bits: Vec<f32> = Vec::new();
        for (rank, res) in collected.into_iter().enumerate() {
            match res {
                Some(Ok(v)) => {
                    bits.push(rank as f32);
                    bits.extend(v);
                }
                Some(Err(e)) => errors.push(format!("rank {rank}: {e}")),
                None => errors.push(format!("rank {rank}: no result")),
            }
        }
        if errors.is_empty() {
            fingerprint = Some(crate::schedule::fnv1a_f32(&bits));
        }
    }
    ExecRecord {
        steps,
        outcome,
        fingerprint,
        errors,
        races,
        lost_updates,
        cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn witness_round_trips() {
        let ds = vec![
            Decision {
                rank: 0,
                kind: ChoiceKind::Fire,
            },
            Decision {
                rank: 12,
                kind: ChoiceKind::Deliver(3),
            },
            Decision {
                rank: 1,
                kind: ChoiceKind::Timeout,
            },
        ];
        let s = witness_string(&ds);
        assert_eq!(s, "0f.12d3.1t");
        assert_eq!(parse_witness(&s), Some(ds));
        assert_eq!(parse_witness(""), Some(vec![]));
        assert_eq!(parse_witness("0x"), None);
    }

    #[test]
    fn live_ping_pong() {
        let mut world = model_world(2);
        let mut c1 = world.pop().expect("rank 1");
        let mut c0 = world.pop().expect("rank 0");
        // lint:allow(raw-spawn): analysis crate hosts model-world threads
        let t = std::thread::spawn(move || {
            let v = c1.recv(0, 7).expect("recv");
            c1.send(0, 8, v.iter().map(|x| x + 1.0).collect())
                .expect("send");
        });
        c0.send(1, 7, vec![1.0]).expect("send");
        assert_eq!(c0.recv(1, 8).expect("recv"), vec![2.0]);
        t.join().expect("peer");
    }

    #[test]
    fn live_send_to_dropped_peer_is_peer_gone() {
        let mut world = model_world(2);
        let c1 = world.pop().expect("rank 1");
        let mut c0 = world.pop().expect("rank 0");
        drop(c1);
        assert_eq!(
            c0.send(1, 3, vec![1.0]),
            Err(CommError::PeerGone { peer: 1 })
        );
    }

    #[test]
    fn live_deadline_times_out() {
        let mut world = model_world(2);
        let _c1 = world.pop().expect("rank 1");
        let mut c0 = world.pop().expect("rank 0");
        assert_eq!(
            c0.recv_deadline(1, 9, Duration::from_millis(20)),
            Err(CommError::Timeout { src: 1, tag: 9 })
        );
    }

    #[test]
    fn subgroup_ranks_remap() {
        let world = model_world(4);
        let sub = world[2].subgroup(&[2, 3]);
        assert_eq!(sub.rank(), 0);
        assert_eq!(sub.size(), 2);
        let sub3 = world[3].subgroup(&[2, 3]);
        assert_eq!(sub3.rank(), 1);
    }

    #[test]
    fn controlled_two_rank_send_recv_explores_one_order() {
        let body: ModelRankFn = Arc::new(|mut t: ModelTransport| {
            let r = t.rank();
            if r == 0 {
                t.send(1, 1, vec![5.0]).map_err(|e| e.to_string())?;
                Ok(vec![0.0])
            } else {
                let v = t.recv(0, 1).map_err(|e| e.to_string())?;
                Ok(v)
            }
        });
        let mut first = |_enabled: &[EnabledChoice]| Some(0);
        let rec = run_execution(2, &body, 0, false, &mut first);
        assert_eq!(rec.outcome, Outcome::Completed);
        assert!(rec.errors.is_empty(), "{:?}", rec.errors);
        assert!(rec.fingerprint.is_some());
        // Exactly two scheduled steps: the send fires, then the recv.
        assert_eq!(rec.decisions().len(), 2);
    }

    #[test]
    fn controlled_recv_cycle_reports_wait_for_cycle() {
        let body: ModelRankFn = Arc::new(|mut t: ModelTransport| {
            let peer = (t.rank() + 1) % 2;
            let v = t.recv(peer, 99).map_err(|e| e.to_string())?;
            t.send(peer, 99, v.clone()).map_err(|e| e.to_string())?;
            Ok(v)
        });
        let mut first = |_: &[EnabledChoice]| Some(0);
        let rec = run_execution(2, &body, 0, false, &mut first);
        assert_eq!(rec.outcome, Outcome::Deadlock);
        assert_eq!(rec.cycles.len(), 1);
        let detail = &rec.cycles[0].detail;
        assert!(detail.contains("wait-for cycle"), "{detail}");
        assert!(
            detail.contains("rank 0 blocked on (src 1, tag 99)"),
            "{detail}"
        );
        assert!(
            detail.contains("rank 1 blocked on (src 0, tag 99)"),
            "{detail}"
        );
    }

    #[test]
    fn controlled_cells_catch_lost_update() {
        let body: ModelRankFn = Arc::new(|mut t: ModelTransport| {
            let v = t.cell_load(0).map_err(|e| e.to_string())?;
            t.cell_store(0, v + 1.0).map_err(|e| e.to_string())?;
            Ok(vec![])
        });
        // Interleave the loads before the stores: both ranks load 0, both
        // store 1 — the second store clobbers an unobserved write.
        let script = [0usize, 1, 1, 0]; // r0 load, r1 load, r1 store, r0 store
        let mut i = 0;
        let mut policy = move |enabled: &[EnabledChoice]| {
            let want = script[i.min(script.len() - 1)];
            i += 1;
            enabled.iter().position(|c| c.rank == want)
        };
        let rec = run_execution(2, &body, 0, false, &mut policy);
        assert_eq!(rec.outcome, Outcome::Completed);
        assert_eq!(rec.lost_updates.len(), 1, "one clobbered write");
    }

    #[test]
    fn controlled_rmw_never_loses_updates() {
        let body: ModelRankFn = Arc::new(|mut t: ModelTransport| {
            let v = t.cell_add(0, 1.0).map_err(|e| e.to_string())?;
            Ok(vec![v])
        });
        let mut first = |_: &[EnabledChoice]| Some(0);
        let rec = run_execution(2, &body, 0, false, &mut first);
        assert_eq!(rec.outcome, Outcome::Completed);
        assert!(rec.lost_updates.is_empty());
    }
}

//! Compute and communication cost models.
//!
//! Every timing figure in the paper (Figs 1, 4, 5, 6) is regenerated from
//! this model: minibatch compute time comes from the network's actual
//! multiply–accumulate count divided by an effective GPU throughput (plus a
//! fixed kernel-launch overhead that dominates for the tiny NLC-F
//! minibatches), and aggregation time comes from the α–β link model of the
//! [`Topology`].

use crate::topology::Topology;

/// Bytes per parameter (`f32` gradients/parameters throughout).
pub const BYTES_PER_PARAM: f64 = 4.0;

/// Communication time of one gradient aggregation, broken out by algorithm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommCost {
    /// Seconds one learner spends communicating per aggregation.
    pub seconds: f64,
    /// Total elements moved system-wide per aggregation.
    pub total_elements: f64,
}

/// The full platform cost model.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Link model.
    pub topology: Topology,
    /// Effective FLOP/s of one learner (K80-class, achieved not peak).
    pub gpu_flops: f64,
    /// Fixed per-minibatch overhead (kernel launches, framework) in
    /// seconds — dominates when minibatches are tiny (NLC-F uses M=11).
    pub minibatch_overhead: f64,
    /// Per-epoch fixed cost (input shuffling, accuracy pass) in seconds.
    pub epoch_overhead: f64,
    /// Slowdown of each learner's *compute* from sharing the host input
    /// pipeline with `p-1` peers: factor `1 + alpha*(p-1)`.
    pub input_contention: f64,
    /// FLOPs per multiply–accumulate.
    pub flops_per_mac: f64,
    /// Backward-pass cost relative to forward (weight grads + input
    /// grads ≈ 2× forward).
    pub backward_factor: f64,
}

impl CostModel {
    /// Calibrated model of the paper's testbed.
    pub fn paper_testbed() -> Self {
        CostModel {
            topology: Topology::paper_testbed(),
            gpu_flops: 1.5e12,
            minibatch_overhead: 6e-3,
            epoch_overhead: 0.02,
            input_contention: 0.06,
            flops_per_mac: 2.0,
            backward_factor: 2.0,
        }
    }

    /// Compute seconds for one minibatch of `batch` samples on a model
    /// with `macs_per_sample` forward MACs, with `p` learners active.
    pub fn minibatch_compute(&self, macs_per_sample: u64, batch: usize, p: usize) -> f64 {
        let fwd_flops = macs_per_sample as f64 * batch as f64 * self.flops_per_mac;
        let total = fwd_flops * (1.0 + self.backward_factor);
        let contention = 1.0 + self.input_contention * (p.saturating_sub(1)) as f64;
        self.minibatch_overhead + total * contention / self.gpu_flops
    }

    /// One tree allreduce of `m` parameters among `p` learners:
    /// `2·⌈log₂ p⌉` pipeline rounds over GPU links — the paper's
    /// `O(m log p)` collective.
    pub fn allreduce_tree(&self, m: usize, p: usize) -> CommCost {
        self.allreduce_tree_elements(m as f64, p)
    }

    /// Tree allreduce of a fractional element count — used to price
    /// compressed gradients (top-k / quantized payloads).
    pub fn allreduce_tree_elements(&self, elements: f64, p: usize) -> CommCost {
        if p <= 1 {
            return CommCost {
                seconds: 0.0,
                total_elements: 0.0,
            };
        }
        let rounds = 2.0 * (p as f64).log2().ceil();
        let bytes = elements * BYTES_PER_PARAM;
        CommCost {
            seconds: rounds * self.topology.gpu_link_time(bytes),
            total_elements: 2.0 * (p as f64 - 1.0) * elements,
        }
    }

    /// One ring allreduce of `m` parameters among `p` learners:
    /// `2(p−1)` rounds of `m/p` elements — bandwidth-optimal, more
    /// latency-bound (ablation).
    pub fn allreduce_ring(&self, m: usize, p: usize) -> CommCost {
        if p <= 1 {
            return CommCost {
                seconds: 0.0,
                total_elements: 0.0,
            };
        }
        let rounds = 2.0 * (p as f64 - 1.0);
        let bytes = m as f64 * BYTES_PER_PARAM / p as f64;
        CommCost {
            seconds: rounds * self.topology.gpu_link_time(bytes),
            total_elements: 2.0 * (p as f64 - 1.0) * m as f64 / p as f64 * p as f64,
        }
    }

    /// One parameter-server interaction (push `m` gradients up, pull `m`
    /// parameters down) for one learner while `p` learners share the host
    /// channel — the `O(m·p)` system traffic path.
    pub fn ps_roundtrip(&self, m: usize, p: usize) -> CommCost {
        let bytes = m as f64 * BYTES_PER_PARAM;
        CommCost {
            seconds: 2.0 * self.topology.host_link_time(bytes, p),
            total_elements: 2.0 * m as f64 * p as f64,
        }
    }

    /// Wall-clock model of one *degraded* fault-tolerant allreduce round
    /// among `p` learners of which `survivors` remain: confirming a dead
    /// rank costs one failure-detection `deadline_s` wait at its tree
    /// level, the recovery coordinator waits out a sweep window of
    /// `deadline_s · ⌈log₂ p⌉` for rerouted partials, and the repaired sum
    /// is redistributed to the `survivors − 1` non-coordinator ranks by
    /// direct sends of `m` elements. Matches the threaded backend's
    /// `ft_allreduce` timing structure (leveled deadline windows, direct
    /// result distribution); a fault-free round costs nothing extra over
    /// [`CostModel::allreduce_tree`].
    pub fn recovery(&self, m: usize, p: usize, survivors: usize, deadline_s: f64) -> CommCost {
        assert!(survivors >= 1 && survivors <= p, "survivors out of range");
        if survivors == p || p <= 1 {
            return CommCost {
                seconds: 0.0,
                total_elements: 0.0,
            };
        }
        let levels = (p as f64).log2().ceil().max(1.0);
        let detection = deadline_s;
        let sweep = deadline_s * levels;
        let bytes = m as f64 * BYTES_PER_PARAM;
        let fanout = (survivors - 1) as f64;
        CommCost {
            seconds: detection + sweep + fanout * self.topology.gpu_link_time(bytes),
            total_elements: fanout * m as f64,
        }
    }

    /// Initial model broadcast to `p` learners (tree).
    pub fn broadcast(&self, m: usize, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let bytes = m as f64 * BYTES_PER_PARAM;
        (p as f64).log2().ceil() * self.topology.gpu_link_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M_CIFAR: usize = 506_378;
    const M_NLC: usize = 1_733_511;

    #[test]
    fn allreduce_scales_logarithmically() {
        let c = CostModel::paper_testbed();
        let t2 = c.allreduce_tree(M_CIFAR, 2).seconds;
        let t8 = c.allreduce_tree(M_CIFAR, 8).seconds;
        let t16 = c.allreduce_tree(M_CIFAR, 16).seconds;
        assert!((t8 / t2 - 3.0).abs() < 1e-9, "log2(8)/log2(2) = 3");
        assert!((t16 / t2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ps_traffic_scales_linearly() {
        let c = CostModel::paper_testbed();
        let e2 = c.ps_roundtrip(M_CIFAR, 2).total_elements;
        let e8 = c.ps_roundtrip(M_CIFAR, 8).total_elements;
        assert!((e8 / e2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sasgd_beats_ps_per_aggregation() {
        // The paper's headline communication claim at p = 8.
        let c = CostModel::paper_testbed();
        for &m in &[M_CIFAR, M_NLC] {
            let ar = c.allreduce_tree(m, 8).seconds;
            let ps = c.ps_roundtrip(m, 8).seconds;
            assert!(ar < ps, "allreduce {ar} should beat PS {ps} for m={m}");
        }
    }

    #[test]
    fn single_learner_needs_no_aggregation() {
        let c = CostModel::paper_testbed();
        assert_eq!(c.allreduce_tree(M_CIFAR, 1).seconds, 0.0);
        assert_eq!(c.broadcast(M_CIFAR, 1), 0.0);
        // PS roundtrip still nonzero: Downpour with p=1 still talks to the
        // server (Fig 1 shows ~20 % comm at one learner).
        assert!(c.ps_roundtrip(M_CIFAR, 1).seconds > 0.0);
    }

    #[test]
    fn tiny_batches_are_overhead_bound() {
        let c = CostModel::paper_testbed();
        // NLC-ish MACs, minibatch 11: overhead comparable to math time.
        let t = c.minibatch_compute(9_000_000, 11, 1);
        assert!(t < 2.0 * c.minibatch_overhead + 1e-3);
        // CIFAR-ish MACs, minibatch 64: math dominates.
        let t2 = c.minibatch_compute(44_000_000, 64, 1);
        assert!(t2 > 2.0 * c.minibatch_overhead);
    }

    #[test]
    fn recovery_is_deadline_dominated_and_scales() {
        let c = CostModel::paper_testbed();
        // Fault-free rounds cost nothing extra.
        assert_eq!(c.recovery(M_CIFAR, 8, 8, 0.5).seconds, 0.0);
        let r8 = c.recovery(M_CIFAR, 8, 7, 0.5);
        let r16 = c.recovery(M_CIFAR, 16, 15, 0.5);
        assert!(r16.seconds > r8.seconds, "deeper tree, longer sweep");
        // The detection deadline dominates the redistribution traffic.
        assert!(r8.seconds > 0.5, "at least one deadline wait");
        let fast = c.recovery(M_CIFAR, 8, 7, 0.05);
        assert!(
            fast.seconds < r8.seconds,
            "shorter deadline, faster recovery"
        );
        assert_eq!(r8.total_elements, 6.0 * M_CIFAR as f64);
    }

    #[test]
    fn compute_grows_with_contention() {
        let c = CostModel::paper_testbed();
        assert!(c.minibatch_compute(44_000_000, 64, 8) > c.minibatch_compute(44_000_000, 64, 1));
    }

    #[test]
    fn fig1_shape_downpour_comm_share() {
        // Communication share of Downpour epoch time (T=1):
        // CIFAR ≈ 20-40 %, NLC > 60 % — the Fig 1 qualitative shape.
        let c = CostModel::paper_testbed();
        let share = |macs: u64, batch: usize, m: usize, p: usize| {
            let comp = c.minibatch_compute(macs, batch, p);
            let comm = c.ps_roundtrip(m, p).seconds;
            comm / (comm + comp)
        };
        let cifar1 = share(44_000_000, 64, M_CIFAR, 1);
        let cifar8 = share(44_000_000, 64, M_CIFAR, 8);
        let nlc1 = share(9_000_000, 11, M_NLC, 1);
        assert!((0.1..0.45).contains(&cifar1), "cifar p=1 share {cifar1}");
        assert!(cifar8 > cifar1, "share grows with p");
        assert!(nlc1 > 0.6, "nlc share {nlc1}");
    }
}

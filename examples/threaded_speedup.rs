//! Real-parallelism demo: SASGD over OS threads with actual tree
//! allreduce, measuring wall-clock epoch time on this machine — the
//! same algorithm the simulated figures analyze, executed for real.
//!
//! ```text
//! cargo run --release --example threaded_speedup
//! ```

use std::time::Instant;

use sasgd::core::algorithms::GammaP;
use sasgd::core::report::ascii_table;
use sasgd::core::{run_threaded_sasgd, TrainConfig};
use sasgd::data::cifar_like::{generate, CifarLikeConfig};
use sasgd::nn::models;
use sasgd::simnet::JitterModel;
use sasgd::tensor::SeedRng;

fn main() {
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(768, 128, 10));
    let epochs = 4;
    let factory = || models::tiny_cnn(10, &mut SeedRng::new(7));
    println!(
        "threaded SASGD, {} train samples, {} epochs, host cores: {}\n",
        train_set.len(),
        epochs,
        std::thread::available_parallelism().map_or(0, usize::from)
    );

    let mut rows = Vec::new();
    let mut seq_time = None;
    for (p, t) in [(1usize, 1usize), (2, 8), (4, 8), (4, 1)] {
        let mut cfg = TrainConfig::new(epochs, 8, 0.05, 42);
        cfg.jitter = JitterModel::none();
        cfg.eval_cap = 256;
        let t0 = Instant::now();
        let h = run_threaded_sasgd(&factory, &train_set, &test_set, &cfg, p, t, GammaP::OverP);
        let wall = t0.elapsed().as_secs_f64();
        if p == 1 {
            seq_time = Some(wall);
        }
        rows.push(vec![
            p.to_string(),
            t.to_string(),
            format!("{wall:.2}"),
            seq_time.map_or("-".into(), |s| format!("{:.2}", s / wall)),
            format!("{:.1}", h.final_test_acc() * 100.0),
        ]);
    }
    println!(
        "{}",
        ascii_table(&["p", "T", "wall (s)", "speedup", "test acc %"], &rows)
    );
    println!(
        "Learners are real threads; gradients travel through the binomial-tree\n\
         allreduce of sasgd-comm. Speedups depend on this machine's core count;\n\
         larger T trims the allreduce + barrier share exactly as in Fig 4."
    );
}

//! Machine-readable (`ANALYSIS.json`) and human-readable report emission.
//!
//! JSON is hand-rolled: the workspace vendors no serde, and the schema is
//! small and flat. Strings are escaped per RFC 8259 minimal rules.

use crate::lints::Violation;
use crate::schedule::ScenarioResult;

/// Escape a string for embedding in a JSON document.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The complete analyzer outcome, ready for serialization.
pub struct Analysis {
    /// Files the lint pass scanned.
    pub files_scanned: usize,
    /// Lint findings on the real tree (must be empty for a green run).
    pub violations: Vec<Violation>,
    /// Self-check: findings on the bad-fixture corpus (must be non-empty —
    /// proves the lints can still fire).
    pub fixture_violations: usize,
    /// Fixture files exercised by the self-check.
    pub fixture_files: usize,
    /// Race-checker scenario outcomes.
    pub scenarios: Vec<ScenarioResult>,
    /// Self-check: the arrival-order bad reduce diverged as expected.
    pub bad_fixture_diverged: bool,
    /// Self-check: the deliberate recv cycle was caught by the watchdog.
    pub deadlock_detected: bool,
}

impl Analysis {
    /// Overall verdict: clean tree, invariant schedules, working self-checks.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
            && self.fixture_violations > 0
            && self.scenarios.iter().all(ScenarioResult::ok)
            && self.bad_fixture_diverged
            && self.deadlock_detected
    }

    /// Serialize to the `ANALYSIS.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"ok\": {},\n", self.ok()));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"lint_violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
                esc(v.lint),
                esc(&v.file),
                v.line,
                esc(&v.message),
                if i + 1 < self.violations.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"fixture_selfcheck\": {{\"files\": {}, \"violations\": {}, \"fired\": {}}},\n",
            self.fixture_files,
            self.fixture_violations,
            self.fixture_violations > 0
        ));
        s.push_str("  \"schedule_scenarios\": [\n");
        for (i, sc) in self.scenarios.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"p\": {}, \"schedules\": {}, \"distinct_results\": {}, \
                 \"deadlocks\": {}, \"lost_updates\": {}, \"fingerprint\": \"{:016x}\", \"ok\": {}}}{}\n",
                esc(&sc.name),
                sc.p,
                sc.schedules,
                sc.distinct_results,
                sc.deadlocks,
                sc.lost_updates,
                sc.fingerprint,
                sc.ok(),
                if i + 1 < self.scenarios.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"race_selfcheck\": {{\"bad_fixture_diverged\": {}, \"deadlock_detected\": {}}}\n",
            self.bad_fixture_diverged, self.deadlock_detected
        ));
        s.push_str("}\n");
        s
    }

    /// Human-readable summary for the terminal / bench report.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("== sasgd-analysis ==\n\n");
        s.push_str(&format!(
            "lint pass: {} files scanned, {} violation(s)\n",
            self.files_scanned,
            self.violations.len()
        ));
        for v in &self.violations {
            s.push_str(&format!(
                "  [{}] {}:{} {}\n",
                v.lint, v.file, v.line, v.message
            ));
        }
        s.push_str(&format!(
            "lint self-check: {} fixture file(s), {} violation(s) fired ({})\n\n",
            self.fixture_files,
            self.fixture_violations,
            if self.fixture_violations > 0 {
                "ok"
            } else {
                "FAIL: lints are dead"
            }
        ));
        s.push_str("schedule exploration:\n");
        for sc in &self.scenarios {
            s.push_str(&format!(
                "  {:<38} p={} schedules={:>3} distinct={} deadlocks={} lost={}  {}\n",
                sc.name,
                sc.p,
                sc.schedules,
                sc.distinct_results,
                sc.deadlocks,
                sc.lost_updates,
                if sc.ok() { "ok" } else { "FAIL" }
            ));
            for r in &sc.deadlock_reports {
                s.push_str(&format!("      {r}\n"));
            }
        }
        s.push_str(&format!(
            "race self-check: bad fixture diverged = {}, deadlock detected = {}\n",
            self.bad_fixture_diverged, self.deadlock_detected
        ));
        s.push_str(&format!(
            "\noverall: {}\n",
            if self.ok() { "OK" } else { "FAIL" }
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn empty_analysis_round_trips() {
        let a = Analysis {
            files_scanned: 3,
            violations: vec![Violation {
                lint: "map-iter",
                file: "crates/x.rs".into(),
                line: 7,
                message: "no \"maps\"".into(),
            }],
            fixture_violations: 5,
            fixture_files: 2,
            scenarios: Vec::new(),
            bad_fixture_diverged: true,
            deadlock_detected: true,
        };
        let j = a.to_json();
        assert!(j.contains("\"files_scanned\": 3"));
        assert!(j.contains("no \\\"maps\\\""));
        assert!(j.contains("\"ok\": false")); // violations present → not ok
    }
}
